#include "src/encoding/pem.h"

#include "src/encoding/base64.h"
#include "src/util/strings.h"

namespace rs::encoding {

namespace {
constexpr std::string_view kBegin = "-----BEGIN ";
constexpr std::string_view kEnd = "-----END ";
constexpr std::string_view kDashes = "-----";

// Extracts the label from a framing line, or nullopt if malformed.
std::optional<std::string_view> frame_label(std::string_view line,
                                            std::string_view prefix) {
  line = rs::util::trim(line);
  if (!rs::util::starts_with(line, prefix) ||
      !rs::util::ends_with(line, kDashes)) {
    return std::nullopt;
  }
  return line.substr(prefix.size(),
                     line.size() - prefix.size() - kDashes.size());
}
}  // namespace

PemParseResult pem_parse_all(std::string_view text) {
  PemParseResult result;
  const auto lines = rs::util::split_lines(text);

  std::size_t i = 0;
  while (i < lines.size()) {
    const auto begin_label = frame_label(lines[i], kBegin);
    if (!begin_label) {
      ++i;  // prose between blocks is ignored
      continue;
    }
    std::string body;
    bool closed = false;
    std::size_t j = i + 1;
    for (; j < lines.size(); ++j) {
      if (const auto end_label = frame_label(lines[j], kEnd)) {
        if (*end_label != *begin_label) {
          result.errors.push_back("END label '" + std::string(*end_label) +
                                  "' does not match BEGIN '" +
                                  std::string(*begin_label) + "'");
        } else {
          closed = true;
        }
        break;
      }
      body.append(rs::util::trim(lines[j]));
    }
    if (!closed) {
      if (j >= lines.size()) {
        result.errors.push_back("unterminated PEM block '" +
                                std::string(*begin_label) + "'");
      }
      i = j + 1;
      continue;
    }
    auto der = base64_decode(body, {.allow_whitespace = true});
    if (!der) {
      result.errors.push_back("invalid Base64 in PEM block '" +
                              std::string(*begin_label) + "'");
    } else {
      result.objects.push_back(
          PemObject{std::string(*begin_label), std::move(*der)});
    }
    i = j + 1;
  }
  return result;
}

std::optional<PemObject> pem_parse_first(std::string_view text,
                                         std::string_view label) {
  for (auto& obj : pem_parse_all(text).objects) {
    if (obj.label == label) return std::move(obj);
  }
  return std::nullopt;
}

std::string pem_encode(std::string_view label,
                       std::span<const std::uint8_t> der) {
  std::string out;
  out.reserve(der.size() * 4 / 3 + label.size() * 2 + 64);
  out.append(kBegin).append(label).append(kDashes).push_back('\n');
  out += base64_encode_wrapped(der, 64);
  out.append(kEnd).append(label).append(kDashes).push_back('\n');
  return out;
}

std::string pem_encode_bundle(const std::vector<PemObject>& objects) {
  std::string out;
  for (const auto& obj : objects) out += pem_encode(obj.label, obj.der);
  return out;
}

}  // namespace rs::encoding
