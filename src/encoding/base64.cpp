#include "src/encoding/base64.h"

#include <array>
#include <cctype>

namespace rs::encoding {

namespace {

constexpr char kAlphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

constexpr std::array<std::int8_t, 256> make_reverse() {
  std::array<std::int8_t, 256> rev{};
  for (auto& v : rev) v = -1;
  for (int i = 0; i < 64; ++i) {
    rev[static_cast<unsigned char>(kAlphabet[i])] = static_cast<std::int8_t>(i);
  }
  return rev;
}
constexpr auto kReverse = make_reverse();

}  // namespace

std::string base64_encode(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  for (; i + 3 <= data.size(); i += 3) {
    const std::uint32_t n = (static_cast<std::uint32_t>(data[i]) << 16) |
                            (static_cast<std::uint32_t>(data[i + 1]) << 8) |
                            data[i + 2];
    out.push_back(kAlphabet[(n >> 18) & 63]);
    out.push_back(kAlphabet[(n >> 12) & 63]);
    out.push_back(kAlphabet[(n >> 6) & 63]);
    out.push_back(kAlphabet[n & 63]);
  }
  const std::size_t rem = data.size() - i;
  if (rem == 1) {
    const std::uint32_t n = static_cast<std::uint32_t>(data[i]) << 16;
    out.push_back(kAlphabet[(n >> 18) & 63]);
    out.push_back(kAlphabet[(n >> 12) & 63]);
    out.push_back('=');
    out.push_back('=');
  } else if (rem == 2) {
    const std::uint32_t n = (static_cast<std::uint32_t>(data[i]) << 16) |
                            (static_cast<std::uint32_t>(data[i + 1]) << 8);
    out.push_back(kAlphabet[(n >> 18) & 63]);
    out.push_back(kAlphabet[(n >> 12) & 63]);
    out.push_back(kAlphabet[(n >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

std::string base64_encode_wrapped(std::span<const std::uint8_t> data,
                                  std::size_t cols) {
  const std::string flat = base64_encode(data);
  std::string out;
  out.reserve(flat.size() + flat.size() / (cols ? cols : 1) + 1);
  for (std::size_t i = 0; i < flat.size(); i += cols) {
    out.append(flat, i, cols);
    out.push_back('\n');
  }
  return out;
}

std::optional<std::vector<std::uint8_t>> base64_decode(
    std::string_view text, const Base64DecodeOptions& opts) {
  std::string compact;
  compact.reserve(text.size());
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!opts.allow_whitespace) return std::nullopt;
      continue;
    }
    compact.push_back(c);
  }
  if (compact.size() % 4 != 0) return std::nullopt;

  std::vector<std::uint8_t> out;
  out.reserve(compact.size() / 4 * 3);
  for (std::size_t i = 0; i < compact.size(); i += 4) {
    int pad = 0;
    std::uint32_t n = 0;
    for (std::size_t j = 0; j < 4; ++j) {
      const char c = compact[i + j];
      if (c == '=') {
        // '=' is legal only in the last group's final one or two slots.
        if (i + 4 != compact.size() || j < 2) return std::nullopt;
        if (j == 2 && compact[i + 3] != '=') return std::nullopt;
        ++pad;
        n <<= 6;
        continue;
      }
      if (pad > 0) return std::nullopt;  // data after '='
      const std::int8_t v = kReverse[static_cast<unsigned char>(c)];
      if (v < 0) return std::nullopt;
      n = (n << 6) | static_cast<std::uint32_t>(v);
    }
    // Reject non-canonical encodings whose discarded bits are non-zero.
    if (pad == 1 && (n & 0xFF) != 0) return std::nullopt;
    if (pad == 2 && (n & 0xFFFF) != 0) return std::nullopt;

    out.push_back(static_cast<std::uint8_t>((n >> 16) & 0xFF));
    if (pad < 2) out.push_back(static_cast<std::uint8_t>((n >> 8) & 0xFF));
    if (pad < 1) out.push_back(static_cast<std::uint8_t>(n & 0xFF));
  }
  return out;
}

}  // namespace rs::encoding
