// RFC 4648 Base64 codec (standard alphabet), from scratch.
//
// Strict by default: decode rejects bad characters, bad padding, and
// non-canonical trailing bits.  A whitespace-tolerant mode supports PEM
// bodies, which wrap at 64 columns.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace rs::encoding {

/// Encodes to standard Base64 with '=' padding, no line wrapping.
std::string base64_encode(std::span<const std::uint8_t> data);

/// Encodes wrapped at `cols` characters per line ('\n' separators), as used
/// inside PEM bodies.  `cols` must be positive.
std::string base64_encode_wrapped(std::span<const std::uint8_t> data,
                                  std::size_t cols);

/// Decode options.
struct Base64DecodeOptions {
  /// Permit ASCII whitespace between groups (needed for PEM bodies).
  bool allow_whitespace = false;
};

/// Decodes standard Base64.  Returns nullopt on: invalid characters, length
/// not a multiple of 4 (after whitespace removal), misplaced '=', or
/// non-zero discarded bits in the final group (non-canonical encodings).
std::optional<std::vector<std::uint8_t>> base64_decode(
    std::string_view text, const Base64DecodeOptions& opts = {});

}  // namespace rs::encoding
