// RFC 7468 PEM textual envelope reader/writer.
//
// Linux distributions ship their root stores as PEM bundles
// (/etc/ssl/certs/ca-certificates.crt); this module parses and emits those
// envelopes.  Text outside BEGIN/END framing (bundle comments, cert subjects
// printed by ca-certificates tooling) is ignored by the reader, matching how
// TLS libraries consume bundles.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace rs::encoding {

/// One decoded PEM object ("-----BEGIN <label>-----" block).
struct PemObject {
  std::string label;                // e.g. "CERTIFICATE"
  std::vector<std::uint8_t> der;    // decoded body
};

/// Parse outcome: decoded objects plus any malformed-block diagnostics.
struct PemParseResult {
  std::vector<PemObject> objects;
  /// Human-readable reasons for blocks that were skipped (mismatched END
  /// label, bad Base64, truncated block).  Empty means a fully clean parse.
  std::vector<std::string> errors;
};

/// Scans `text` for PEM blocks and decodes each.  Malformed blocks are
/// recorded in `errors` and skipped; parsing continues with the next block.
PemParseResult pem_parse_all(std::string_view text);

/// Convenience: first object with the given label, if any block parses.
std::optional<PemObject> pem_parse_first(std::string_view text,
                                         std::string_view label);

/// Encodes one object as a PEM block (64-column body, trailing newline).
std::string pem_encode(std::string_view label,
                       std::span<const std::uint8_t> der);

/// Encodes a bundle: concatenation of blocks, one per object.
std::string pem_encode_bundle(const std::vector<PemObject>& objects);

}  // namespace rs::encoding
