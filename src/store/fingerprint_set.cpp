#include "src/store/fingerprint_set.h"

#include <algorithm>

namespace rs::store {

FingerprintSet::FingerprintSet(std::vector<rs::crypto::Sha256Digest> prints)
    : prints_(std::move(prints)) {
  std::sort(prints_.begin(), prints_.end());
  prints_.erase(std::unique(prints_.begin(), prints_.end()), prints_.end());
}

void FingerprintSet::insert(const rs::crypto::Sha256Digest& fp) {
  const auto it = std::lower_bound(prints_.begin(), prints_.end(), fp);
  if (it == prints_.end() || *it != fp) prints_.insert(it, fp);
}

bool FingerprintSet::contains(const rs::crypto::Sha256Digest& fp) const {
  return std::binary_search(prints_.begin(), prints_.end(), fp);
}

std::size_t FingerprintSet::intersection_size(const FingerprintSet& other) const {
  std::size_t count = 0;
  auto a = prints_.begin();
  auto b = other.prints_.begin();
  while (a != prints_.end() && b != other.prints_.end()) {
    if (*a < *b) {
      ++a;
    } else if (*b < *a) {
      ++b;
    } else {
      ++count;
      ++a;
      ++b;
    }
  }
  return count;
}

std::size_t FingerprintSet::union_size(const FingerprintSet& other) const {
  return size() + other.size() - intersection_size(other);
}

FingerprintSet FingerprintSet::difference(const FingerprintSet& other) const {
  FingerprintSet out;
  std::set_difference(prints_.begin(), prints_.end(), other.prints_.begin(),
                      other.prints_.end(), std::back_inserter(out.prints_));
  return out;
}

FingerprintSet FingerprintSet::intersection(const FingerprintSet& other) const {
  FingerprintSet out;
  std::set_intersection(prints_.begin(), prints_.end(), other.prints_.begin(),
                        other.prints_.end(), std::back_inserter(out.prints_));
  return out;
}

FingerprintSet FingerprintSet::set_union(const FingerprintSet& other) const {
  FingerprintSet out;
  std::set_union(prints_.begin(), prints_.end(), other.prints_.begin(),
                 other.prints_.end(), std::back_inserter(out.prints_));
  return out;
}

double FingerprintSet::jaccard_distance(const FingerprintSet& other) const {
  const std::size_t uni = union_size(other);
  if (uni == 0) return 0.0;  // both empty: identical
  const std::size_t inter = intersection_size(other);
  return 1.0 - static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace rs::store
