#include "src/store/overlay.h"

namespace rs::store {

void TrustOverlay::add(OverlayRevocation revocation) {
  revocations_.push_back(std::move(revocation));
}

bool TrustOverlay::is_revoked(const rs::crypto::Sha256Digest& root,
                              rs::util::Date when) const {
  return find(root, when) != nullptr;
}

const OverlayRevocation* TrustOverlay::find(
    const rs::crypto::Sha256Digest& root, rs::util::Date when) const {
  for (const auto& r : revocations_) {
    if (r.root == root && r.effective <= when) return &r;
  }
  return nullptr;
}

FingerprintSet effective_tls_anchors(const Snapshot& snapshot,
                                     const TrustOverlay& overlay) {
  // Bulk build (one sort) instead of per-element sorted inserts.
  std::vector<rs::crypto::Sha256Digest> prints;
  for (const auto& e : snapshot.entries) {
    if (!e.is_tls_anchor()) continue;
    const auto fp = e.certificate->sha256();
    if (!overlay.is_revoked(fp, snapshot.date)) prints.push_back(fp);
  }
  return FingerprintSet(std::move(prints));
}

FingerprintSet revoked_but_shipped(const Snapshot& snapshot,
                                   const TrustOverlay& overlay) {
  std::vector<rs::crypto::Sha256Digest> prints;
  for (const auto& e : snapshot.entries) {
    if (!e.is_tls_anchor()) continue;
    const auto fp = e.certificate->sha256();
    if (overlay.is_revoked(fp, snapshot.date)) prints.push_back(fp);
  }
  return FingerprintSet(std::move(prints));
}

}  // namespace rs::store
