// The canonical trust model every provider format normalizes into.
//
// NSS expresses per-purpose trust levels plus partial distrust
// (CKA_NSS_SERVER_DISTRUST_AFTER); Microsoft expresses per-purpose EKU
// properties plus disallow dates; Linux bundles express a bare on-or-off
// bit.  TrustEntry is the superset: a certificate plus per-purpose
// PurposeTrust.  §6 of the paper shows exactly what breaks when richer
// models are squeezed into the on-or-off one — this module is where that
// lossy conversion becomes visible.
#pragma once

#include <array>
#include <compare>
#include <memory>
#include <optional>
#include <string>

#include "src/util/date.h"
#include "src/x509/certificate.h"

namespace rs::store {

/// Web-PKI trust purposes tracked by the study.
enum class TrustPurpose : std::uint8_t {
  kServerAuth = 0,
  kEmailProtection = 1,
  kCodeSigning = 2,
};

inline constexpr std::array<TrustPurpose, 3> kAllPurposes = {
    TrustPurpose::kServerAuth, TrustPurpose::kEmailProtection,
    TrustPurpose::kCodeSigning};

const char* to_string(TrustPurpose p) noexcept;

/// Trust levels, mirroring NSS certdata semantics.
enum class TrustLevel : std::uint8_t {
  /// CKT_NSS_TRUSTED_DELEGATOR: a trust anchor for this purpose.
  kTrustedDelegator,
  /// CKT_NSS_MUST_VERIFY_TRUST: not an anchor; chains may pass through.
  kMustVerify,
  /// CKT_NSS_NOT_TRUSTED: actively distrusted.
  kDistrusted,
};

const char* to_string(TrustLevel l) noexcept;

/// Trust in one certificate for one purpose.
struct PurposeTrust {
  TrustLevel level = TrustLevel::kMustVerify;
  /// NSS partial distrust: leaf certificates issued after this date are no
  /// longer trusted (the Symantec mechanism).  Only meaningful when `level`
  /// is kTrustedDelegator.
  std::optional<rs::util::Date> distrust_after;

  bool is_anchor() const noexcept {
    return level == TrustLevel::kTrustedDelegator;
  }

  friend auto operator<=>(const PurposeTrust&, const PurposeTrust&) = default;
};

/// A root-store entry: one certificate plus its per-purpose trust bits.
struct TrustEntry {
  /// Shared because the same root appears in hundreds of snapshots.
  std::shared_ptr<const rs::x509::Certificate> certificate;
  std::array<PurposeTrust, 3> purposes;

  const PurposeTrust& trust_for(TrustPurpose p) const noexcept {
    return purposes[static_cast<std::size_t>(p)];
  }
  PurposeTrust& trust_for(TrustPurpose p) noexcept {
    return purposes[static_cast<std::size_t>(p)];
  }

  /// Anchor for the given purpose (ignoring distrust_after cutoffs).
  bool is_anchor_for(TrustPurpose p) const noexcept {
    return trust_for(p).is_anchor();
  }

  /// Anchor for TLS server authentication — the study's headline purpose.
  bool is_tls_anchor() const noexcept {
    return is_anchor_for(TrustPurpose::kServerAuth);
  }

  /// True when TLS trust carries a partial-distrust cutoff.
  bool is_partially_distrusted_tls() const noexcept {
    const auto& t = trust_for(TrustPurpose::kServerAuth);
    return t.is_anchor() && t.distrust_after.has_value();
  }
};

/// Convenience constructors for the common shapes.
TrustEntry make_tls_anchor(std::shared_ptr<const rs::x509::Certificate> cert);
TrustEntry make_anchor_for(std::shared_ptr<const rs::x509::Certificate> cert,
                           std::initializer_list<TrustPurpose> purposes);

}  // namespace rs::store
