#include "src/store/snapshot.h"

#include <algorithm>

namespace rs::store {

FingerprintSet Snapshot::all_fingerprints() const {
  std::vector<rs::crypto::Sha256Digest> prints;
  prints.reserve(entries.size());
  for (const auto& e : entries) prints.push_back(e.certificate->sha256());
  return FingerprintSet(std::move(prints));
}

FingerprintSet Snapshot::anchors_for(TrustPurpose p) const {
  std::vector<rs::crypto::Sha256Digest> prints;
  for (const auto& e : entries) {
    if (e.is_anchor_for(p)) prints.push_back(e.certificate->sha256());
  }
  return FingerprintSet(std::move(prints));
}

const TrustEntry* Snapshot::find(const rs::crypto::Sha256Digest& fp) const {
  for (const auto& e : entries) {
    if (e.certificate->sha256() == fp) return &e;
  }
  return nullptr;
}

std::size_t Snapshot::expired_count() const {
  return static_cast<std::size_t>(
      std::count_if(entries.begin(), entries.end(), [this](const TrustEntry& e) {
        return e.certificate->is_expired_at(date);
      }));
}

std::size_t Snapshot::md5_signed_count() const {
  return static_cast<std::size_t>(
      std::count_if(entries.begin(), entries.end(), [](const TrustEntry& e) {
        return e.is_tls_anchor() && e.certificate->has_md5_signature();
      }));
}

std::size_t Snapshot::weak_rsa_count() const {
  return static_cast<std::size_t>(
      std::count_if(entries.begin(), entries.end(), [](const TrustEntry& e) {
        return e.is_tls_anchor() && e.certificate->has_weak_rsa_key();
      }));
}

void ProviderHistory::add(Snapshot snapshot) {
  const auto pos = std::upper_bound(
      snapshots_.begin(), snapshots_.end(), snapshot.date,
      [](rs::util::Date d, const Snapshot& s) { return d < s.date; });
  snapshots_.insert(pos, std::move(snapshot));
}

const Snapshot* ProviderHistory::at(rs::util::Date when) const {
  const Snapshot* best = nullptr;
  for (const auto& s : snapshots_) {
    if (s.date <= when) best = &s;
    else break;
  }
  return best;
}

std::size_t ProviderHistory::unique_certificates() const {
  FingerprintSet all;
  for (const auto& s : snapshots_) {
    all = all.set_union(s.all_fingerprints());
  }
  return all.size();
}

std::size_t ProviderHistory::unique_tls_certificates() const {
  FingerprintSet all;
  for (const auto& s : snapshots_) {
    all = all.set_union(s.tls_anchors());
  }
  return all.size();
}

}  // namespace rs::store
