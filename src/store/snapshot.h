// Root-store snapshots and per-provider histories.
//
// A Snapshot is one provider's root store at one point in time — the unit of
// the paper's 619-snapshot dataset (Table 2).  A ProviderHistory is the
// date-ordered sequence of one provider's snapshots.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/store/fingerprint_set.h"
#include "src/store/trust.h"
#include "src/util/date.h"

namespace rs::store {

/// One provider's root store at a point in time.
struct Snapshot {
  std::string provider;  // e.g. "NSS", "Debian"
  rs::util::Date date;   // approximate release date (§3.1 caveats)
  std::string version;   // provider-native version label, e.g. "3.53"
  std::vector<TrustEntry> entries;

  std::size_t size() const noexcept { return entries.size(); }

  /// Fingerprints of every certificate present, regardless of trust bits.
  FingerprintSet all_fingerprints() const;

  /// Fingerprints of anchors for the given purpose.
  FingerprintSet anchors_for(TrustPurpose p) const;

  /// Fingerprints of TLS server-auth anchors — the set used for family
  /// clustering and derivative matching.
  FingerprintSet tls_anchors() const { return anchors_for(TrustPurpose::kServerAuth); }

  /// Entry for a fingerprint, if present.
  const TrustEntry* find(const rs::crypto::Sha256Digest& fp) const;

  /// Count of entries whose certificate has expired as of the snapshot date
  /// (Table 3's "Avg. Expired" input).
  std::size_t expired_count() const;

  /// Counts of trusted-for-TLS roots with MD5 signatures / RSA < 2048.
  std::size_t md5_signed_count() const;
  std::size_t weak_rsa_count() const;
};

/// Date-ordered snapshots for one provider.
class ProviderHistory {
 public:
  ProviderHistory() = default;
  explicit ProviderHistory(std::string provider)
      : provider_(std::move(provider)) {}

  const std::string& provider() const noexcept { return provider_; }

  /// Inserts keeping date order (stable for equal dates).
  void add(Snapshot snapshot);

  const std::vector<Snapshot>& snapshots() const noexcept { return snapshots_; }
  bool empty() const noexcept { return snapshots_.empty(); }
  std::size_t size() const noexcept { return snapshots_.size(); }

  const Snapshot& front() const { return snapshots_.front(); }
  const Snapshot& back() const { return snapshots_.back(); }

  /// Latest snapshot dated on or before `when`, if any.
  const Snapshot* at(rs::util::Date when) const;

  /// Number of distinct certificates ever present (Table 2 "# Uniq" is the
  /// count of distinct *trusted-for-TLS* roots; see unique_tls_certificates).
  std::size_t unique_certificates() const;

  /// Distinct certificates that were ever TLS anchors in this history.
  std::size_t unique_tls_certificates() const;

  /// Date range covered.
  rs::util::Date first_date() const { return snapshots_.front().date; }
  rs::util::Date last_date() const { return snapshots_.back().date; }

 private:
  std::string provider_;
  std::vector<Snapshot> snapshots_;
};

}  // namespace rs::store
