// Certificate-identity sets with the set algebra the analyses need.
//
// Every family/lineage computation in the paper reduces to set operations
// over SHA-256 fingerprints: Jaccard distance (Figure 1), derivative diffs
// (Figure 4), exclusive roots (Table 6).  FingerprintSet keeps a sorted
// unique vector so intersections/unions are linear merges.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/crypto/digest.h"

namespace rs::store {

/// An immutable-ish sorted set of SHA-256 certificate fingerprints.
class FingerprintSet {
 public:
  FingerprintSet() = default;
  /// Builds from any order; sorts and deduplicates.
  explicit FingerprintSet(std::vector<rs::crypto::Sha256Digest> prints);

  void insert(const rs::crypto::Sha256Digest& fp);
  bool contains(const rs::crypto::Sha256Digest& fp) const;

  /// Pre-allocates for `n` elements.  Call sites that accumulate in a loop
  /// should prefer collecting into a vector and using the bulk constructor
  /// (one sort) over repeated sorted inserts (each O(n)).
  void reserve(std::size_t n) { prints_.reserve(n); }

  std::size_t size() const noexcept { return prints_.size(); }
  bool empty() const noexcept { return prints_.empty(); }
  const std::vector<rs::crypto::Sha256Digest>& items() const noexcept {
    return prints_;
  }

  std::size_t intersection_size(const FingerprintSet& other) const;
  std::size_t union_size(const FingerprintSet& other) const;

  /// Elements in this set but not in `other`.
  FingerprintSet difference(const FingerprintSet& other) const;
  FingerprintSet intersection(const FingerprintSet& other) const;
  FingerprintSet set_union(const FingerprintSet& other) const;

  /// Jaccard distance 1 - |A∩B| / |A∪B|; two empty sets have distance 0.
  double jaccard_distance(const FingerprintSet& other) const;

  friend bool operator==(const FingerprintSet&, const FingerprintSet&) = default;

 private:
  std::vector<rs::crypto::Sha256Digest> prints_;  // sorted, unique
};

}  // namespace rs::store
