#include "src/store/interner.h"

#include <algorithm>

#include "src/obs/registry.h"
#include "src/obs/span.h"
#include "src/store/database.h"

namespace rs::store {

double jaccard_distance(const InternedSet& a, const InternedSet& b) noexcept {
  std::size_t inter = a.ids.intersection_size(b.ids);
  // Unmapped digests can only intersect the other side's unmapped list.
  if (!a.unmapped.empty() && !b.unmapped.empty()) {
    auto ai = a.unmapped.begin();
    auto bi = b.unmapped.begin();
    while (ai != a.unmapped.end() && bi != b.unmapped.end()) {
      if (*ai < *bi) {
        ++ai;
      } else if (*bi < *ai) {
        ++bi;
      } else {
        ++inter;
        ++ai;
        ++bi;
      }
    }
  }
  const std::size_t uni = a.size() + b.size() - inter;
  if (uni == 0) return 0.0;  // both empty: identical
  return 1.0 - static_cast<double>(inter) / static_cast<double>(uni);
}

FingerprintSet set_difference(const InternedSet& a, const InternedSet& b,
                              const CertInterner& interner) {
  std::vector<rs::crypto::Sha256Digest> out;
  const IdSet ids = a.ids.difference(b.ids);
  out.reserve(ids.size() + a.unmapped.size());
  for (const std::uint32_t id : ids.ids()) {
    out.push_back(interner.digest_of(id));
  }
  std::set_difference(a.unmapped.begin(), a.unmapped.end(),
                      b.unmapped.begin(), b.unmapped.end(),
                      std::back_inserter(out));
  return FingerprintSet(std::move(out));
}

CertInterner::CertInterner(std::vector<rs::crypto::Sha256Digest> digests)
    : digests_(std::move(digests)) {
  std::sort(digests_.begin(), digests_.end());
  digests_.erase(std::unique(digests_.begin(), digests_.end()),
                 digests_.end());
}

CertInterner CertInterner::from_database(const StoreDatabase& db) {
  rs::obs::Span span("store/intern_build");
  std::vector<rs::crypto::Sha256Digest> digests;
  for (const auto& [name, history] : db.histories()) {
    (void)name;
    for (const auto& snap : history.snapshots()) {
      for (const auto& entry : snap.entries) {
        digests.push_back(entry.certificate->sha256());
      }
    }
  }
  auto interner = CertInterner(std::move(digests));
  span.set_items(interner.size());
  rs::obs::Registry::global()
      .counter("store.certs_interned")
      .add(interner.size());
  return interner;
}

CertInterner CertInterner::from_history(const ProviderHistory& history) {
  rs::obs::Span span("store/intern_build");
  std::vector<rs::crypto::Sha256Digest> digests;
  for (const auto& snap : history.snapshots()) {
    for (const auto& entry : snap.entries) {
      digests.push_back(entry.certificate->sha256());
    }
  }
  auto interner = CertInterner(std::move(digests));
  span.set_items(interner.size());
  rs::obs::Registry::global()
      .counter("store.certs_interned")
      .add(interner.size());
  return interner;
}

std::optional<std::uint32_t> CertInterner::id_of(
    const rs::crypto::Sha256Digest& fp) const noexcept {
  const auto it = std::lower_bound(digests_.begin(), digests_.end(), fp);
  if (it == digests_.end() || *it != fp) return std::nullopt;
  return static_cast<std::uint32_t>(it - digests_.begin());
}

InternedSet CertInterner::intern(const FingerprintSet& fps) const {
  InternedSet out;
  out.ids = IdSet(digests_.size());
  // Both sides are sorted, so one linear co-walk maps everything; the
  // unmapped remainder stays sorted by construction.
  auto uit = digests_.begin();
  for (const auto& fp : fps.items()) {
    uit = std::lower_bound(uit, digests_.end(), fp);
    if (uit != digests_.end() && *uit == fp) {
      out.ids.insert(static_cast<std::uint32_t>(uit - digests_.begin()));
    } else {
      out.unmapped.push_back(fp);
    }
  }
  auto& reg = rs::obs::Registry::global();
  if (reg.enabled()) {
    // "unmapped" digests fall off the dense-ID fast path and are corrected
    // by sorted merges — a growing count flags a stale interner universe.
    reg.counter("store.sets_interned").increment();
    reg.counter("store.intern_unmapped").add(out.unmapped.size());
  }
  return out;
}

FingerprintSet CertInterner::materialize(const IdSet& ids) const {
  std::vector<rs::crypto::Sha256Digest> out;
  out.reserve(ids.size());
  for (const std::uint32_t id : ids.ids()) out.push_back(digests_[id]);
  return FingerprintSet(std::move(out));
}

}  // namespace rs::store
