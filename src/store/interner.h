// Certificate interning: SHA-256 fingerprints to dense uint32 IDs.
//
// The analysis hot paths (pairwise Jaccard over 619 snapshots, closest-
// NSS-version matching, per-snapshot diffs, exclusive roots) are all set
// algebra over certificate fingerprints.  Interning the universe of
// certificates once turns every 32-byte digest into a dense ID, and every
// set into an IdSet bitmap where the algebra is popcount over packed words.
//
// Determinism contract: IDs are assigned in sorted-digest order, so the
// mapping is a pure function of the certificate universe — independent of
// snapshot iteration order, build order, or thread count.  Materialized
// results (IdSet::ids() walked through digest_of) therefore come out in
// the same sorted order FingerprintSet maintains.  See docs/INTERNING.md.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/crypto/digest.h"
#include "src/store/fingerprint_set.h"
#include "src/store/id_set.h"

namespace rs::store {

class StoreDatabase;
class ProviderHistory;

/// A FingerprintSet split into the interned universe and the remainder.
///
/// Digests outside the interner's universe cannot be represented as bits;
/// they are returned sorted in `unmapped` so callers can correct exact
/// cardinalities (an unmapped element can never intersect an in-universe
/// set) or classify them directly.
struct InternedSet {
  IdSet ids;
  std::vector<rs::crypto::Sha256Digest> unmapped;  // sorted, unique

  std::size_t size() const noexcept { return ids.size() + unmapped.size(); }
};

/// Exact Jaccard distance between two interned sets, correcting for
/// unmapped digests on either side (merged by sorted intersection, so the
/// value equals FingerprintSet::jaccard_distance on the original sets
/// bit-for-bit).
double jaccard_distance(const InternedSet& a, const InternedSet& b) noexcept;

class CertInterner;

/// Materialized `a \ b` as sorted digests: bitwise ANDNOT on the mapped
/// IDs plus a sorted-merge difference of the unmapped remainders.  Equals
/// FingerprintSet::difference on the original sets.
FingerprintSet set_difference(const InternedSet& a, const InternedSet& b,
                              const CertInterner& interner);

/// The dense-ID mapping over a fixed certificate universe.
class CertInterner {
 public:
  CertInterner() = default;
  /// Builds from any order; sorts and deduplicates, then IDs = sorted index.
  explicit CertInterner(std::vector<rs::crypto::Sha256Digest> digests);

  /// Universe = every certificate in every snapshot of every history
  /// (all trust purposes), so any set drawn from `db` interns fully.
  static CertInterner from_database(const StoreDatabase& db);
  /// Universe = every certificate in one provider's history.
  static CertInterner from_history(const ProviderHistory& history);

  std::size_t size() const noexcept { return digests_.size(); }
  bool empty() const noexcept { return digests_.empty(); }

  /// Dense ID for a digest, if it is in the universe.
  std::optional<std::uint32_t> id_of(
      const rs::crypto::Sha256Digest& fp) const noexcept;
  const rs::crypto::Sha256Digest& digest_of(std::uint32_t id) const {
    return digests_[id];
  }

  /// Interns a fingerprint set; out-of-universe digests land in `unmapped`.
  InternedSet intern(const FingerprintSet& fps) const;

  /// Round-trips an IdSet back to digests (sorted, by the ID order contract).
  FingerprintSet materialize(const IdSet& ids) const;

  /// The sorted, unique digest universe (ID i maps to digests()[i]).  The
  /// persistence layer serializes this flat array directly.
  const std::vector<rs::crypto::Sha256Digest>& digests() const noexcept {
    return digests_;
  }

 private:
  std::vector<rs::crypto::Sha256Digest> digests_;  // sorted, unique
};

}  // namespace rs::store
