// External trust overlays: client-side distrust applied ON TOP of a shipped
// root store.
//
// The paper repeatedly distinguishes *removing* a root from *revoking* it
// out-of-band: Apple blocked Certinomis and two StartCom roots via
// valid.apple.com while still shipping the certificates (§5.3, Table 4
// footnotes), and blocked the Government-of-Venezuela root the same way
// (§5.2).  Mozilla's OneCRL and Chrome's CRLSets are the same mechanism.
// A TrustOverlay is that out-of-band layer: dated revocations (optionally
// with a leaf whitelist, as in Apple's CNNIC response) keyed by certificate
// fingerprint.  Effective trust = shipped store minus overlay.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/crypto/digest.h"
#include "src/store/fingerprint_set.h"
#include "src/store/snapshot.h"
#include "src/util/date.h"

namespace rs::store {

/// One out-of-band revocation.
struct OverlayRevocation {
  rs::crypto::Sha256Digest root{};
  rs::util::Date effective;        // active from this date on
  std::string source;              // "valid.apple.com", "OneCRL", ...
  /// Leaves explicitly exempted (Apple whitelisted 1,429 CNNIC leaves);
  /// informational — leaf-level validation is out of the study's scope.
  std::size_t whitelisted_leaves = 0;
};

/// A provider's out-of-band trust layer.
class TrustOverlay {
 public:
  TrustOverlay() = default;
  explicit TrustOverlay(std::string provider)
      : provider_(std::move(provider)) {}

  const std::string& provider() const noexcept { return provider_; }

  void add(OverlayRevocation revocation);
  const std::vector<OverlayRevocation>& revocations() const noexcept {
    return revocations_;
  }
  bool empty() const noexcept { return revocations_.empty(); }

  /// True if `root` is revoked by this overlay as of `when`.
  bool is_revoked(const rs::crypto::Sha256Digest& root,
                  rs::util::Date when) const;

  /// The revocation record, if active at `when`.
  const OverlayRevocation* find(const rs::crypto::Sha256Digest& root,
                                rs::util::Date when) const;

 private:
  std::string provider_;
  std::vector<OverlayRevocation> revocations_;
};

/// TLS anchors of `snapshot` that remain effective under `overlay` at the
/// snapshot's own date.
FingerprintSet effective_tls_anchors(const Snapshot& snapshot,
                                     const TrustOverlay& overlay);

/// Shipped-but-revoked TLS anchors — the "opportunity to clean up
/// untrusted roots" the paper points at (§5.2).
FingerprintSet revoked_but_shipped(const Snapshot& snapshot,
                                   const TrustOverlay& overlay);

}  // namespace rs::store
