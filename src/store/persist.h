// Binary persistence machinery for the on-disk index format (RSIX).
//
// The serving layer must cold-start in milliseconds, which means the
// compiled CertInterner + TrustIndex have to round-trip through a durable,
// verifiable on-disk representation instead of being rebuilt from raw
// snapshots on every start.  This module is the format substrate that
// src/query/index_io.cpp builds on:
//
//   * a 64-bit xxhash-style checksum (`hash64`, the XXH64 construction),
//   * a typed error model — every way a file can lie maps to a LoadError,
//   * ByteWriter / ByteReader: fixed-width little-endian primitives where
//     every read is bounds-checked by construction and every count field
//     is validated against both an explicit cap and the bytes actually
//     remaining (so a hostile length prefix can never drive allocation),
//   * FileBuilder / FileView: the magic/version/flags header, a section
//     table, and per-section checksums.  FileView::parse verifies the
//     header checksum (which covers the section table) and every section
//     checksum before any payload byte is interpreted,
//   * atomic_write_file: temp file in the target directory, single fsync,
//     rename — readers never observe a torn file,
//   * MappedFile: read-only mmap of a file for zero-copy parsing.
//
// The format is deliberately mmap-friendly: flat fixed-width LE arrays,
// no pointers, contiguous sections.  See docs/PERSISTENCE.md for the
// layout diagram, the versioning policy, and the corruption-handling
// contract the fault-injection suite enforces.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "src/crypto/digest.h"
#include "src/store/id_set.h"
#include "src/util/result.h"

namespace rs::store::persist {

/// XXH64-style 64-bit hash over `data`.  Used for the header and section
/// checksums; not cryptographic — it detects corruption, not tampering.
std::uint64_t hash64(std::span<const std::uint8_t> data,
                     std::uint64_t seed = 0) noexcept;

/// Convenience overload for string payloads.
std::uint64_t hash64(std::string_view data, std::uint64_t seed = 0) noexcept;

// --- typed error model ------------------------------------------------------

/// Every distinct way a persisted file can lie to the loader.  The
/// fault-injection suite (ctest label `persist_fault`) asserts that each
/// corruption class fails closed with one of these — never a crash.
enum class LoadError : std::uint8_t {
  kIo,             // open/stat/map/read failed at the OS level
  kTruncated,      // fewer bytes than the header/sections declare
  kBadMagic,       // not an RSIX file at all
  kBadVersion,     // a version this build does not speak
  kBadFlags,       // unknown feature bits set
  kBadHeader,      // malformed fixed header fields
  kBadSectionTable,// section table malformed (ids, order, offsets, sizes)
  kChecksum,       // header or section checksum mismatch
  kCountOverflow,  // a count field exceeds its cap or the bytes present
  kBadValue,       // a decoded value violates a format invariant
  kTrailingBytes,  // bytes beyond the declared end of a section or file
};

const char* to_string(LoadError e) noexcept;

/// A typed failure plus human-readable context.
struct LoadFailure {
  LoadError code = LoadError::kIo;
  std::string detail;

  /// "<code>: <detail>" for logs and CLI diagnostics.
  std::string message() const;
};

/// Either a loaded T or a typed LoadFailure (the persist-layer analogue of
/// rs::util::Result, which carries only a string).
template <typename T>
class [[nodiscard]] Loaded {
 public:
  Loaded(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-*)
  static Loaded fail(LoadError code, std::string detail) {
    return Loaded(LoadFailure{code, std::move(detail)});
  }
  static Loaded fail(LoadFailure failure) { return Loaded(std::move(failure)); }

  bool ok() const noexcept { return std::holds_alternative<T>(data_); }
  explicit operator bool() const noexcept { return ok(); }

  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& take() && { return std::get<T>(std::move(data_)); }

  const LoadFailure& failure() const { return std::get<LoadFailure>(data_); }
  LoadError code() const { return failure().code; }
  std::string message() const { return failure().message(); }

  /// Propagates this failure into a Loaded of another type.
  template <typename U>
  Loaded<U> propagate() const {
    return Loaded<U>::fail(failure());
  }

 private:
  explicit Loaded(LoadFailure f) : data_(std::move(f)) {}
  std::variant<T, LoadFailure> data_;
};

// --- caps -------------------------------------------------------------------
// Hard ceilings on every count field, enforced before any allocation or
// multiplication that scales with file content.  Generous enough for the
// mega-ecosystem axis (ROADMAP item 1), small enough that a hostile field
// can never wrap arithmetic.

inline constexpr std::uint64_t kMaxCerts = std::uint64_t{1} << 27;
inline constexpr std::uint64_t kMaxProviders = std::uint64_t{1} << 20;
inline constexpr std::uint64_t kMaxDatesPerProvider = std::uint64_t{1} << 22;
inline constexpr std::uint64_t kMaxNameBytes = 256;
inline constexpr std::uint64_t kMaxVersionBytes = 128;
inline constexpr std::uint64_t kMaxSections = 16;

// --- primitive writer / reader ----------------------------------------------

/// Appends fixed-width little-endian primitives to a byte string.
class ByteWriter {
 public:
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void bytes(const void* data, std::size_t n);
  /// u32 length prefix + raw bytes.
  void str(std::string_view s);

  std::size_t size() const noexcept { return out_.size(); }
  std::string take() && { return std::move(out_); }
  const std::string& data() const noexcept { return out_; }

 private:
  std::string out_;
};

/// Bounds-checked cursor over an immutable byte span.
///
/// Every accessor validates the remaining length first; the first failure
/// latches a typed LoadFailure and turns all subsequent reads into cheap
/// no-ops returning zero values, so straight-line parse code never needs
/// an early return to stay in bounds.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  bool ok() const noexcept { return !fail_.has_value(); }
  const LoadFailure& failure() const { return *fail_; }

  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  /// Copies `n` bytes out; on underrun fails and leaves `out` untouched.
  bool bytes(void* out, std::size_t n);

  /// Reads a u64 count and validates `count <= cap` AND
  /// `count <= remaining / elem_bytes` (overflow-safe), failing with
  /// kCountOverflow otherwise.  Returns 0 on any failure so callers can
  /// loop over the result without re-checking.
  std::uint64_t count(std::uint64_t cap, std::size_t elem_bytes,
                      const char* what);

  /// u32 length prefix (<= max_len and <= remaining) + bytes.
  std::string str(std::uint64_t max_len, const char* what);

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool finished() const noexcept { return pos_ == data_.size(); }
  std::size_t position() const noexcept { return pos_; }

  /// Latches a failure (first one wins).
  void fail(LoadError code, std::string detail);

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  std::optional<LoadFailure> fail_;
};

// --- file framing -----------------------------------------------------------

/// File magic: "RSIX" + format generation + \r\n\x1a sentinel bytes that
/// catch text-mode mangling (the PNG trick).
inline constexpr std::array<std::uint8_t, 8> kMagic = {
    'R', 'S', 'I', 'X', '0', '1', '\r', '\n'};
inline constexpr std::uint32_t kFormatVersion = 1;
/// Size of the fixed header preceding the section table.
inline constexpr std::size_t kHeaderBytes = 40;
/// Size of one section-table entry.
inline constexpr std::size_t kSectionEntryBytes = 32;

/// One parsed section: its id and checksum-verified payload view.
struct SectionView {
  std::uint32_t id = 0;
  std::span<const std::uint8_t> payload;
};

/// Assembles a file: fixed header, section table, contiguous payloads,
/// per-section checksums, and a header checksum covering the header and
/// the table.  Sections are laid out in the order they were added; the
/// loader requires ids to be strictly ascending, so add them sorted.
class FileBuilder {
 public:
  void add_section(std::uint32_t id, std::string payload);
  /// The complete file image (deterministic for identical inputs).
  std::string finish() const;

 private:
  struct Pending {
    std::uint32_t id;
    std::string payload;
  };
  std::vector<Pending> sections_;
};

/// Parsed, checksum-verified view of a file image.  Borrows the input
/// span; keep the backing bytes (e.g. the MappedFile) alive while using it.
class FileView {
 public:
  static Loaded<FileView> parse(std::span<const std::uint8_t> file);

  const std::vector<SectionView>& sections() const noexcept {
    return sections_;
  }
  /// Payload for a section id, or nullopt when absent.
  std::optional<std::span<const std::uint8_t>> section(
      std::uint32_t id) const noexcept;

 private:
  std::vector<SectionView> sections_;
};

/// Writes `bytes` to `path` atomically: unique temp file in the same
/// directory, one fsync, rename over the target.  Returns the byte count.
rs::util::Result<std::uint64_t> atomic_write_file(const std::string& path,
                                                  std::string_view bytes);

/// Read-only memory map of a whole file.  Move-only RAII; unmaps on
/// destruction.  Empty files map to an empty span.
class MappedFile {
 public:
  MappedFile() = default;
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  static Loaded<MappedFile> open(const std::string& path);

  std::span<const std::uint8_t> bytes() const noexcept {
    return {static_cast<const std::uint8_t*>(data_), size_};
  }

 private:
  void* data_ = nullptr;
  std::size_t size_ = 0;
};

// --- store-type codecs ------------------------------------------------------

/// Canonical IdSet encoding: u64 word count (trailing zero words trimmed)
/// + packed LE words.  Trimming makes serialization a pure function of the
/// logical set, which is what the byte-equivalence tests key on.
void write_id_set(ByteWriter& w, const IdSet& set);

/// Reads an IdSet over a universe of `universe` IDs.  Fails kCountOverflow
/// when the word count exceeds the universe, kBadValue when the encoding
/// is non-canonical (trailing zero word) or sets a bit >= universe.
IdSet read_id_set(ByteReader& r, std::size_t universe);

/// u64 count + count * 32-byte digests, strictly ascending (the interner's
/// canonical order — also what makes IDs a pure function of the universe).
void write_digests(ByteWriter& w,
                   const std::vector<rs::crypto::Sha256Digest>& digests);
std::vector<rs::crypto::Sha256Digest> read_digests(ByteReader& r);

}  // namespace rs::store::persist
