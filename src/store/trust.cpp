#include "src/store/trust.h"

namespace rs::store {

const char* to_string(TrustPurpose p) noexcept {
  switch (p) {
    case TrustPurpose::kServerAuth:
      return "server-auth";
    case TrustPurpose::kEmailProtection:
      return "email-protection";
    case TrustPurpose::kCodeSigning:
      return "code-signing";
  }
  return "?";
}

const char* to_string(TrustLevel l) noexcept {
  switch (l) {
    case TrustLevel::kTrustedDelegator:
      return "trusted-delegator";
    case TrustLevel::kMustVerify:
      return "must-verify";
    case TrustLevel::kDistrusted:
      return "distrusted";
  }
  return "?";
}

TrustEntry make_tls_anchor(std::shared_ptr<const rs::x509::Certificate> cert) {
  return make_anchor_for(std::move(cert), {TrustPurpose::kServerAuth});
}

TrustEntry make_anchor_for(std::shared_ptr<const rs::x509::Certificate> cert,
                           std::initializer_list<TrustPurpose> purposes) {
  TrustEntry e;
  e.certificate = std::move(cert);
  for (TrustPurpose p : purposes) {
    e.trust_for(p).level = TrustLevel::kTrustedDelegator;
  }
  return e;
}

}  // namespace rs::store
