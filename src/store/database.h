// The snapshot database: all providers' histories plus a certificate index.
//
// This is the study's consolidated dataset (Table 2): every parsed snapshot
// from every provider, with a cross-provider index from fingerprint to the
// certificate and the (provider, date) intervals in which it appears.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/store/snapshot.h"

namespace rs::store {

/// Presence of one certificate in one provider's history.
struct PresenceInterval {
  std::string provider;
  rs::util::Date first_seen;
  rs::util::Date last_seen;   // date of last snapshot containing it
  bool in_latest = false;     // still present in the provider's newest snapshot
};

/// All providers' root-store histories with cross-provider indexing.
class StoreDatabase {
 public:
  /// Adds a history; replaces any existing history for the same provider.
  void add(ProviderHistory history);

  const ProviderHistory* find(const std::string& provider) const;
  std::vector<std::string> providers() const;

  std::size_t provider_count() const noexcept { return histories_.size(); }
  std::size_t total_snapshots() const;

  /// The certificate object for a fingerprint, if any provider carries it.
  std::shared_ptr<const rs::x509::Certificate> certificate(
      const rs::crypto::Sha256Digest& fp) const;

  /// Providers/intervals where the certificate appears as a *TLS anchor*.
  std::vector<PresenceInterval> tls_presence(
      const rs::crypto::Sha256Digest& fp) const;

  /// Distinct certificates that were ever TLS anchors in any history.
  FingerprintSet all_tls_roots_ever() const;

  /// Distinct certificates ever TLS anchors for one provider.
  FingerprintSet tls_roots_ever(const std::string& provider) const;

  /// All histories in provider-name order.
  const std::map<std::string, ProviderHistory>& histories() const noexcept {
    return histories_;
  }

 private:
  std::map<std::string, ProviderHistory> histories_;
};

}  // namespace rs::store
