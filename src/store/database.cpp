#include "src/store/database.h"

#include "src/obs/registry.h"

namespace rs::store {

void StoreDatabase::add(ProviderHistory history) {
  auto& reg = rs::obs::Registry::global();
  if (reg.enabled()) {
    reg.counter("store.histories_added").increment();
    reg.counter("store.snapshots_added").add(history.size());
  }
  histories_.insert_or_assign(history.provider(), std::move(history));
}

const ProviderHistory* StoreDatabase::find(const std::string& provider) const {
  const auto it = histories_.find(provider);
  return it == histories_.end() ? nullptr : &it->second;
}

std::vector<std::string> StoreDatabase::providers() const {
  std::vector<std::string> out;
  out.reserve(histories_.size());
  for (const auto& [name, _] : histories_) out.push_back(name);
  return out;
}

std::size_t StoreDatabase::total_snapshots() const {
  std::size_t n = 0;
  for (const auto& [_, h] : histories_) n += h.size();
  return n;
}

std::shared_ptr<const rs::x509::Certificate> StoreDatabase::certificate(
    const rs::crypto::Sha256Digest& fp) const {
  for (const auto& [_, h] : histories_) {
    for (const auto& s : h.snapshots()) {
      if (const TrustEntry* e = s.find(fp)) return e->certificate;
    }
  }
  return nullptr;
}

std::vector<PresenceInterval> StoreDatabase::tls_presence(
    const rs::crypto::Sha256Digest& fp) const {
  std::vector<PresenceInterval> out;
  for (const auto& [name, h] : histories_) {
    std::optional<PresenceInterval> interval;
    for (const auto& s : h.snapshots()) {
      const TrustEntry* e = s.find(fp);
      const bool anchored = e != nullptr && e->is_tls_anchor();
      if (!anchored) continue;
      if (!interval) {
        interval = PresenceInterval{name, s.date, s.date, false};
      } else {
        interval->last_seen = s.date;
      }
    }
    if (interval) {
      if (!h.empty()) {
        const TrustEntry* latest = h.back().find(fp);
        interval->in_latest = latest != nullptr && latest->is_tls_anchor();
      }
      out.push_back(*interval);
    }
  }
  return out;
}

FingerprintSet StoreDatabase::all_tls_roots_ever() const {
  // Bulk build: collect every anchor then sort/dedupe once, instead of a
  // re-allocating merge per snapshot.
  std::vector<rs::crypto::Sha256Digest> prints;
  for (const auto& [_, h] : histories_) {
    for (const auto& s : h.snapshots()) {
      for (const auto& e : s.entries) {
        if (e.is_tls_anchor()) prints.push_back(e.certificate->sha256());
      }
    }
  }
  return FingerprintSet(std::move(prints));
}

FingerprintSet StoreDatabase::tls_roots_ever(const std::string& provider) const {
  std::vector<rs::crypto::Sha256Digest> prints;
  if (const ProviderHistory* h = find(provider)) {
    for (const auto& s : h->snapshots()) {
      for (const auto& e : s.entries) {
        if (e.is_tls_anchor()) prints.push_back(e.certificate->sha256());
      }
    }
  }
  return FingerprintSet(std::move(prints));
}

}  // namespace rs::store
