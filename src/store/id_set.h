// Dense-ID certificate sets packed as 64-bit words.
//
// Once a CertInterner has mapped SHA-256 fingerprints to dense uint32 IDs,
// every set operation the analyses need — intersection/union cardinality,
// Jaccard distance, difference materialization — becomes bitwise AND/OR
// plus popcount over a handful of cache lines, instead of a linear merge
// over 32-byte digests.  All cardinalities are exact integers, so the
// doubles derived from them (Jaccard) are bit-identical to the merge-based
// FingerprintSet results; see docs/INTERNING.md for the contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rs::store {

/// A set of dense certificate IDs, packed one bit per ID.
///
/// Word storage is sized lazily to the highest ID inserted; operations
/// between sets of different word counts treat the missing tail as zeros,
/// so sets interned against the same CertInterner always compose exactly.
class IdSet {
 public:
  IdSet() = default;
  /// Pre-sizes the bitmap for IDs in [0, universe_size).
  explicit IdSet(std::size_t universe_size);
  /// Builds from any order of IDs (duplicates welcome).
  IdSet(std::size_t universe_size, const std::vector<std::uint32_t>& ids);

  void insert(std::uint32_t id);
  bool contains(std::uint32_t id) const noexcept;

  /// Number of IDs present (maintained incrementally; O(1)).
  std::size_t size() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }

  std::size_t intersection_size(const IdSet& other) const noexcept;
  std::size_t union_size(const IdSet& other) const noexcept;

  /// Elements in this set but not in `other`.
  IdSet difference(const IdSet& other) const;
  IdSet intersection(const IdSet& other) const;
  IdSet set_union(const IdSet& other) const;

  /// In-place union (the bulk-accumulation path for "ever" sets).
  IdSet& operator|=(const IdSet& other);

  /// Jaccard distance 1 - |A∩B| / |A∪B|; two empty sets have distance 0.
  /// Exact-integer cardinalities make this bit-identical to
  /// FingerprintSet::jaccard_distance on the equivalent sets.
  double jaccard_distance(const IdSet& other) const noexcept;

  /// All IDs present, ascending.  Because the interner assigns IDs in
  /// sorted-digest order, this is also sorted-digest order.
  std::vector<std::uint32_t> ids() const;

  /// Raw packed words (may carry trailing zero words; the persisted form
  /// trims them — see src/store/persist.h).
  const std::vector<std::uint64_t>& words() const noexcept { return words_; }

  /// Rebuilds a set from packed words (the persistence load path); the
  /// cardinality is recomputed by popcount.
  static IdSet from_words(std::vector<std::uint64_t> words);

  /// Logical equality: same IDs present (trailing zero words ignored).
  friend bool operator==(const IdSet& a, const IdSet& b) noexcept;

 private:
  std::vector<std::uint64_t> words_;
  std::size_t count_ = 0;
};

}  // namespace rs::store
