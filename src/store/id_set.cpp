#include "src/store/id_set.h"

#include <algorithm>
#include <bit>

namespace rs::store {

namespace {

constexpr std::size_t kWordBits = 64;

inline std::size_t words_for(std::size_t universe_size) noexcept {
  return (universe_size + kWordBits - 1) / kWordBits;
}

}  // namespace

IdSet::IdSet(std::size_t universe_size) : words_(words_for(universe_size), 0) {}

IdSet::IdSet(std::size_t universe_size, const std::vector<std::uint32_t>& ids)
    : IdSet(universe_size) {
  for (const std::uint32_t id : ids) insert(id);
}

void IdSet::insert(std::uint32_t id) {
  const std::size_t word = id / kWordBits;
  if (word >= words_.size()) words_.resize(word + 1, 0);
  const std::uint64_t bit = std::uint64_t{1} << (id % kWordBits);
  if ((words_[word] & bit) == 0) {
    words_[word] |= bit;
    ++count_;
  }
}

bool IdSet::contains(std::uint32_t id) const noexcept {
  const std::size_t word = id / kWordBits;
  if (word >= words_.size()) return false;
  return (words_[word] >> (id % kWordBits)) & 1;
}

std::size_t IdSet::intersection_size(const IdSet& other) const noexcept {
  const std::size_t n = std::min(words_.size(), other.words_.size());
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    count += static_cast<std::size_t>(std::popcount(words_[i] & other.words_[i]));
  }
  return count;
}

std::size_t IdSet::union_size(const IdSet& other) const noexcept {
  return count_ + other.count_ - intersection_size(other);
}

IdSet IdSet::difference(const IdSet& other) const {
  IdSet out;
  out.words_.resize(words_.size(), 0);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    const std::uint64_t w =
        i < other.words_.size() ? words_[i] & ~other.words_[i] : words_[i];
    out.words_[i] = w;
    out.count_ += static_cast<std::size_t>(std::popcount(w));
  }
  return out;
}

IdSet IdSet::intersection(const IdSet& other) const {
  IdSet out;
  const std::size_t n = std::min(words_.size(), other.words_.size());
  out.words_.resize(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t w = words_[i] & other.words_[i];
    out.words_[i] = w;
    out.count_ += static_cast<std::size_t>(std::popcount(w));
  }
  return out;
}

IdSet IdSet::set_union(const IdSet& other) const {
  IdSet out = *this;
  out |= other;
  return out;
}

IdSet& IdSet::operator|=(const IdSet& other) {
  if (other.words_.size() > words_.size()) words_.resize(other.words_.size(), 0);
  std::size_t count = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if (i < other.words_.size()) words_[i] |= other.words_[i];
    count += static_cast<std::size_t>(std::popcount(words_[i]));
  }
  count_ = count;
  return *this;
}

double IdSet::jaccard_distance(const IdSet& other) const noexcept {
  const std::size_t inter = intersection_size(other);
  const std::size_t uni = count_ + other.count_ - inter;
  if (uni == 0) return 0.0;  // both empty: identical
  return 1.0 - static_cast<double>(inter) / static_cast<double>(uni);
}

IdSet IdSet::from_words(std::vector<std::uint64_t> words) {
  IdSet out;
  out.words_ = std::move(words);
  for (const std::uint64_t w : out.words_) {
    out.count_ += static_cast<std::size_t>(std::popcount(w));
  }
  return out;
}

std::vector<std::uint32_t> IdSet::ids() const {
  std::vector<std::uint32_t> out;
  out.reserve(count_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    std::uint64_t w = words_[i];
    while (w != 0) {
      const auto bit = static_cast<std::uint32_t>(std::countr_zero(w));
      out.push_back(static_cast<std::uint32_t>(i * kWordBits) + bit);
      w &= w - 1;  // clear lowest set bit
    }
  }
  return out;
}

bool operator==(const IdSet& a, const IdSet& b) noexcept {
  if (a.count_ != b.count_) return false;
  const std::size_t n = std::min(a.words_.size(), b.words_.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a.words_[i] != b.words_[i]) return false;
  }
  // Equal counts and equal shared prefix: any tail word must be zero.
  return true;
}

}  // namespace rs::store
