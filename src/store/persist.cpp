#include "src/store/persist.h"

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace rs::store::persist {

namespace {

// XXH64 primes (public-domain construction by Yann Collet).
constexpr std::uint64_t kPrime1 = 0x9E3779B185EBCA87ULL;
constexpr std::uint64_t kPrime2 = 0xC2B2AE3D27D4EB4FULL;
constexpr std::uint64_t kPrime3 = 0x165667B19E3779F9ULL;
constexpr std::uint64_t kPrime4 = 0x85EBCA77C2B2AE63ULL;
constexpr std::uint64_t kPrime5 = 0x27D4EB2F165667C5ULL;

inline std::uint64_t read_le64(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

inline std::uint32_t read_le32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

inline std::uint64_t xxh_round(std::uint64_t acc, std::uint64_t input) noexcept {
  acc += input * kPrime2;
  acc = std::rotl(acc, 31);
  acc *= kPrime1;
  return acc;
}

inline std::uint64_t xxh_merge_round(std::uint64_t h,
                                     std::uint64_t v) noexcept {
  h ^= xxh_round(0, v);
  h = h * kPrime1 + kPrime4;
  return h;
}

}  // namespace

std::uint64_t hash64(std::span<const std::uint8_t> data,
                     std::uint64_t seed) noexcept {
  const std::uint8_t* p = data.data();
  const std::uint8_t* const end = p + data.size();
  std::uint64_t h;

  if (data.size() >= 32) {
    std::uint64_t v1 = seed + kPrime1 + kPrime2;
    std::uint64_t v2 = seed + kPrime2;
    std::uint64_t v3 = seed;
    std::uint64_t v4 = seed - kPrime1;
    const std::uint8_t* const limit = end - 32;
    do {
      v1 = xxh_round(v1, read_le64(p));
      v2 = xxh_round(v2, read_le64(p + 8));
      v3 = xxh_round(v3, read_le64(p + 16));
      v4 = xxh_round(v4, read_le64(p + 24));
      p += 32;
    } while (p <= limit);
    h = std::rotl(v1, 1) + std::rotl(v2, 7) + std::rotl(v3, 12) +
        std::rotl(v4, 18);
    h = xxh_merge_round(h, v1);
    h = xxh_merge_round(h, v2);
    h = xxh_merge_round(h, v3);
    h = xxh_merge_round(h, v4);
  } else {
    h = seed + kPrime5;
  }

  h += static_cast<std::uint64_t>(data.size());
  while (p + 8 <= end) {
    h ^= xxh_round(0, read_le64(p));
    h = std::rotl(h, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<std::uint64_t>(read_le32(p)) * kPrime1;
    h = std::rotl(h, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<std::uint64_t>(*p) * kPrime5;
    h = std::rotl(h, 11) * kPrime1;
    ++p;
  }

  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

std::uint64_t hash64(std::string_view data, std::uint64_t seed) noexcept {
  return hash64(
      std::span(reinterpret_cast<const std::uint8_t*>(data.data()),
                data.size()),
      seed);
}

const char* to_string(LoadError e) noexcept {
  switch (e) {
    case LoadError::kIo: return "io_error";
    case LoadError::kTruncated: return "truncated";
    case LoadError::kBadMagic: return "bad_magic";
    case LoadError::kBadVersion: return "bad_version";
    case LoadError::kBadFlags: return "bad_flags";
    case LoadError::kBadHeader: return "bad_header";
    case LoadError::kBadSectionTable: return "bad_section_table";
    case LoadError::kChecksum: return "checksum_mismatch";
    case LoadError::kCountOverflow: return "count_overflow";
    case LoadError::kBadValue: return "bad_value";
    case LoadError::kTrailingBytes: return "trailing_bytes";
  }
  return "?";
}

std::string LoadFailure::message() const {
  std::string out = to_string(code);
  if (!detail.empty()) {
    out += ": ";
    out += detail;
  }
  return out;
}

// --- ByteWriter -------------------------------------------------------------

void ByteWriter::u32(std::uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) {
    buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
  out_.append(buf, sizeof buf);
}

void ByteWriter::u64(std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
  out_.append(buf, sizeof buf);
}

void ByteWriter::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

void ByteWriter::bytes(const void* data, std::size_t n) {
  out_.append(static_cast<const char*>(data), n);
}

void ByteWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  out_.append(s.data(), s.size());
}

// --- ByteReader -------------------------------------------------------------

void ByteReader::fail(LoadError code, std::string detail) {
  if (!fail_) fail_ = LoadFailure{code, std::move(detail)};
}

std::uint32_t ByteReader::u32() {
  if (!ok()) return 0;
  if (remaining() < 4) {
    fail(LoadError::kTruncated, "u32 past end of input");
    return 0;
  }
  const std::uint32_t v = read_le32(data_.data() + pos_);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  if (!ok()) return 0;
  if (remaining() < 8) {
    fail(LoadError::kTruncated, "u64 past end of input");
    return 0;
  }
  const std::uint64_t v = read_le64(data_.data() + pos_);
  pos_ += 8;
  return v;
}

std::int64_t ByteReader::i64() { return static_cast<std::int64_t>(u64()); }

bool ByteReader::bytes(void* out, std::size_t n) {
  if (!ok()) return false;
  if (remaining() < n) {
    fail(LoadError::kTruncated, "byte run past end of input");
    return false;
  }
  std::memcpy(out, data_.data() + pos_, n);
  pos_ += n;
  return true;
}

std::uint64_t ByteReader::count(std::uint64_t cap, std::size_t elem_bytes,
                                const char* what) {
  const std::uint64_t n = u64();
  if (!ok()) return 0;
  if (n > cap) {
    fail(LoadError::kCountOverflow,
         std::string(what) + " count " + std::to_string(n) + " exceeds cap " +
             std::to_string(cap));
    return 0;
  }
  // Overflow-safe: divide the bytes we actually have instead of
  // multiplying the untrusted count.
  if (elem_bytes != 0 && n > remaining() / elem_bytes) {
    fail(LoadError::kCountOverflow,
         std::string(what) + " count " + std::to_string(n) +
             " exceeds the bytes present");
    return 0;
  }
  return n;
}

std::string ByteReader::str(std::uint64_t max_len, const char* what) {
  const std::uint32_t len = u32();
  if (!ok()) return {};
  if (len > max_len) {
    fail(LoadError::kCountOverflow,
         std::string(what) + " length " + std::to_string(len) +
             " exceeds cap " + std::to_string(max_len));
    return {};
  }
  if (len > remaining()) {
    fail(LoadError::kTruncated, std::string(what) + " past end of input");
    return {};
  }
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += len;
  return out;
}

// --- FileBuilder ------------------------------------------------------------

void FileBuilder::add_section(std::uint32_t id, std::string payload) {
  sections_.push_back({id, std::move(payload)});
}

std::string FileBuilder::finish() const {
  const std::size_t table_bytes = sections_.size() * kSectionEntryBytes;
  std::uint64_t offset = kHeaderBytes + table_bytes;
  std::uint64_t total = offset;
  for (const auto& s : sections_) total += s.payload.size();

  ByteWriter header;
  header.bytes(kMagic.data(), kMagic.size());
  header.u32(kFormatVersion);
  header.u32(0);  // flags
  header.u32(static_cast<std::uint32_t>(sections_.size()));
  header.u32(0);  // reserved
  header.u64(total);
  header.u64(0);  // header checksum placeholder

  ByteWriter table;
  for (const auto& s : sections_) {
    table.u32(s.id);
    table.u32(0);  // reserved
    table.u64(offset);
    table.u64(s.payload.size());
    table.u64(hash64(s.payload));
    offset += s.payload.size();
  }

  std::string out = std::move(header).take();
  out += std::move(table).take();
  // The header checksum covers the header (with its own field zeroed, as
  // it is right now) plus the whole section table.
  const std::uint64_t check = hash64(out);
  for (int i = 0; i < 8; ++i) {
    out[32 + i] = static_cast<char>((check >> (8 * i)) & 0xFF);
  }
  for (const auto& s : sections_) out += s.payload;
  return out;
}

// --- FileView ---------------------------------------------------------------

Loaded<FileView> FileView::parse(std::span<const std::uint8_t> file) {
  using L = Loaded<FileView>;
  if (file.size() < kHeaderBytes) {
    return L::fail(LoadError::kTruncated,
                   "file smaller than the fixed header (" +
                       std::to_string(file.size()) + " bytes)");
  }
  if (!std::equal(kMagic.begin(), kMagic.end(), file.begin())) {
    return L::fail(LoadError::kBadMagic, "not an RSIX index file");
  }
  const std::uint32_t version = read_le32(file.data() + 8);
  if (version != kFormatVersion) {
    return L::fail(LoadError::kBadVersion,
                   "format version " + std::to_string(version) +
                       " (this build speaks " +
                       std::to_string(kFormatVersion) + ")");
  }
  const std::uint32_t flags = read_le32(file.data() + 12);
  if (flags != 0) {
    return L::fail(LoadError::kBadFlags,
                   "unknown feature flags 0x" + std::to_string(flags));
  }
  const std::uint32_t section_count = read_le32(file.data() + 16);
  if (section_count > kMaxSections) {
    return L::fail(LoadError::kBadSectionTable,
                   "section count " + std::to_string(section_count) +
                       " exceeds cap " + std::to_string(kMaxSections));
  }
  const std::uint32_t reserved = read_le32(file.data() + 20);
  if (reserved != 0) {
    return L::fail(LoadError::kBadHeader, "reserved header field not zero");
  }
  const std::uint64_t declared_bytes = read_le64(file.data() + 24);
  if (declared_bytes > file.size()) {
    return L::fail(LoadError::kTruncated,
                   "header declares " + std::to_string(declared_bytes) +
                       " bytes, file has " + std::to_string(file.size()));
  }
  if (declared_bytes < file.size()) {
    return L::fail(LoadError::kTrailingBytes,
                   std::to_string(file.size() - declared_bytes) +
                       " byte(s) beyond the declared file end");
  }
  const std::uint64_t table_bytes =
      static_cast<std::uint64_t>(section_count) * kSectionEntryBytes;
  if (kHeaderBytes + table_bytes > file.size()) {
    return L::fail(LoadError::kTruncated, "section table past end of file");
  }

  // Verify the header checksum: header with the checksum field zeroed,
  // plus the section table.
  const std::uint64_t stored_check = read_le64(file.data() + 32);
  std::vector<std::uint8_t> covered(
      file.begin(),
      file.begin() + static_cast<std::ptrdiff_t>(kHeaderBytes + table_bytes));
  std::fill(covered.begin() + 32, covered.begin() + 40, std::uint8_t{0});
  if (hash64(covered) != stored_check) {
    return L::fail(LoadError::kChecksum, "header checksum mismatch");
  }

  FileView view;
  std::uint64_t expected_offset = kHeaderBytes + table_bytes;
  std::uint32_t previous_id = 0;
  for (std::uint32_t i = 0; i < section_count; ++i) {
    const std::uint8_t* entry =
        file.data() + kHeaderBytes + i * kSectionEntryBytes;
    const std::uint32_t id = read_le32(entry);
    const std::uint32_t entry_reserved = read_le32(entry + 4);
    const std::uint64_t offset = read_le64(entry + 8);
    const std::uint64_t bytes = read_le64(entry + 16);
    const std::uint64_t checksum = read_le64(entry + 24);
    if (entry_reserved != 0) {
      return L::fail(LoadError::kBadSectionTable,
                     "reserved section field not zero");
    }
    if (i > 0 && id <= previous_id) {
      return L::fail(LoadError::kBadSectionTable,
                     "section ids not strictly ascending");
    }
    previous_id = id;
    // Canonical layout: sections are contiguous and in table order, so a
    // single running offset both validates and locates every payload
    // without any overlap analysis.
    if (offset != expected_offset) {
      return L::fail(LoadError::kBadSectionTable,
                     "section " + std::to_string(id) +
                         " offset not contiguous");
    }
    if (bytes > file.size() - offset) {
      return L::fail(LoadError::kTruncated,
                     "section " + std::to_string(id) + " extends past "
                     "end of file");
    }
    const auto payload = file.subspan(offset, bytes);
    if (hash64(payload) != checksum) {
      return L::fail(LoadError::kChecksum,
                     "section " + std::to_string(id) + " checksum mismatch");
    }
    view.sections_.push_back({id, payload});
    expected_offset = offset + bytes;
  }
  if (expected_offset != file.size()) {
    return L::fail(LoadError::kTrailingBytes,
                   "bytes beyond the last section");
  }
  return view;
}

std::optional<std::span<const std::uint8_t>> FileView::section(
    std::uint32_t id) const noexcept {
  for (const auto& s : sections_) {
    if (s.id == id) return s.payload;
  }
  return std::nullopt;
}

// --- atomic write -----------------------------------------------------------

rs::util::Result<std::uint64_t> atomic_write_file(const std::string& path,
                                                  std::string_view bytes) {
  using R = rs::util::Result<std::uint64_t>;
  namespace fs = std::filesystem;
  const fs::path target(path);
  fs::path dir = target.parent_path();
  if (dir.empty()) dir = ".";

  // Unique temp name in the same directory so the rename is atomic on the
  // same filesystem.
  std::string temp_template = (dir / (target.filename().string() +
                                      ".tmp.XXXXXX")).string();
  std::vector<char> temp_buf(temp_template.begin(), temp_template.end());
  temp_buf.push_back('\0');
  const int fd = mkstemp(temp_buf.data());
  if (fd < 0) {
    return R::err("cannot create temp file near " + path + ": " +
                  std::strerror(errno));  // NOLINT(concurrency-mt-unsafe)
  }
  const std::string temp_path(temp_buf.data());

  auto fail_cleanup = [&](const std::string& why) {
    close(fd);
    unlink(temp_path.c_str());
    return R::err(why);
  };

  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return fail_cleanup("write failed: " + temp_path);
    }
    written += static_cast<std::size_t>(n);
  }
  // Single fsync: the data is durable before the rename publishes it.
  if (fsync(fd) != 0) return fail_cleanup("fsync failed: " + temp_path);
  if (close(fd) != 0) {
    unlink(temp_path.c_str());
    return R::err("close failed: " + temp_path);
  }
  if (rename(temp_path.c_str(), path.c_str()) != 0) {
    unlink(temp_path.c_str());
    return R::err("rename failed: " + temp_path + " -> " + path);
  }
  return static_cast<std::uint64_t>(bytes.size());
}

// --- MappedFile -------------------------------------------------------------

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_), size_(other.size_) {
  other.data_ = nullptr;
  other.size_ = 0;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) munmap(data_, size_);
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) munmap(data_, size_);
}

Loaded<MappedFile> MappedFile::open(const std::string& path) {
  using L = Loaded<MappedFile>;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return L::fail(LoadError::kIo,
                   "cannot open " + path + ": " +
                       std::strerror(errno));  // NOLINT(concurrency-mt-unsafe)
  }
  struct stat st {};
  if (fstat(fd, &st) != 0) {
    close(fd);
    return L::fail(LoadError::kIo, "cannot stat " + path);
  }
  if (!S_ISREG(st.st_mode)) {
    close(fd);
    return L::fail(LoadError::kIo, path + " is not a regular file");
  }
  MappedFile mapped;
  mapped.size_ = static_cast<std::size_t>(st.st_size);
  if (mapped.size_ > 0) {
    void* p = mmap(nullptr, mapped.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (p == MAP_FAILED) {
      close(fd);
      mapped.size_ = 0;
      return L::fail(LoadError::kIo, "cannot mmap " + path);
    }
    mapped.data_ = p;
  }
  close(fd);
  return mapped;
}

// --- store-type codecs ------------------------------------------------------

void write_id_set(ByteWriter& w, const IdSet& set) {
  const auto& words = set.words();
  std::size_t n = words.size();
  while (n > 0 && words[n - 1] == 0) --n;
  w.u64(n);
  for (std::size_t i = 0; i < n; ++i) w.u64(words[i]);
}

IdSet read_id_set(ByteReader& r, std::size_t universe) {
  const std::uint64_t max_words = (universe + 63) / 64;
  const std::uint64_t n = r.count(max_words, 8, "id-set word");
  std::vector<std::uint64_t> words;
  words.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) words.push_back(r.u64());
  if (!r.ok()) return IdSet();
  if (n > 0 && words.back() == 0) {
    r.fail(LoadError::kBadValue, "non-canonical id set (trailing zero word)");
    return IdSet();
  }
  if (n == max_words && universe % 64 != 0 && n > 0) {
    const std::uint64_t mask = ~((std::uint64_t{1} << (universe % 64)) - 1);
    if ((words.back() & mask) != 0) {
      r.fail(LoadError::kBadValue, "id set bit beyond the universe");
      return IdSet();
    }
  }
  return IdSet::from_words(std::move(words));
}

void write_digests(ByteWriter& w,
                   const std::vector<rs::crypto::Sha256Digest>& digests) {
  w.u64(digests.size());
  for (const auto& d : digests) w.bytes(d.data(), d.size());
}

std::vector<rs::crypto::Sha256Digest> read_digests(ByteReader& r) {
  const std::uint64_t n = r.count(kMaxCerts, 32, "certificate digest");
  std::vector<rs::crypto::Sha256Digest> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    rs::crypto::Sha256Digest d{};
    if (!r.bytes(d.data(), d.size())) return {};
    if (!out.empty() && !(out.back() < d)) {
      r.fail(LoadError::kBadValue,
             "certificate digests not strictly ascending");
      return {};
    }
    out.push_back(d);
  }
  return out;
}

}  // namespace rs::store::persist
