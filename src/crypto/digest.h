// Common digest vocabulary for certificate fingerprinting.
//
// Root-store formats identify certificates by hash: NSS trust objects carry
// MD5 and SHA-1, authroot.stl entries are keyed by SHA-1, and modern tooling
// compares SHA-256 fingerprints.  All three are implemented from scratch in
// this module (RFC 1321, FIPS 180-4).
#pragma once

#include <array>
#include <cstdint>

namespace rs::crypto {

using Md5Digest = std::array<std::uint8_t, 16>;
using Sha1Digest = std::array<std::uint8_t, 20>;
using Sha256Digest = std::array<std::uint8_t, 32>;

}  // namespace rs::crypto
