// SHA-256 (FIPS 180-4), implemented from scratch.
//
// SHA-256 fingerprints are the canonical certificate identity throughout the
// measurement pipeline (Jaccard sets, exclusive-root analysis, Table 6 ids).
#pragma once

#include <cstdint>
#include <span>

#include "src/crypto/digest.h"

namespace rs::crypto {

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  Sha256() noexcept;

  void update(std::span<const std::uint8_t> data) noexcept;

  /// Finalizes and returns the digest.  The hasher must not be used after.
  Sha256Digest finish() noexcept;

  static Sha256Digest hash(std::span<const std::uint8_t> data) noexcept;

 private:
  void compress(const std::uint8_t* block) noexcept;

  std::uint32_t state_[8];
  std::uint64_t length_ = 0;
  std::uint8_t buffer_[64];
  std::size_t buffered_ = 0;
};

}  // namespace rs::crypto
