#include "src/crypto/hmac.h"

#include <array>

#include "src/crypto/sha256.h"

namespace rs::crypto {

Sha256Digest hmac_sha256(std::span<const std::uint8_t> key,
                         std::span<const std::uint8_t> data) noexcept {
  constexpr std::size_t kBlock = 64;
  std::array<std::uint8_t, kBlock> k{};
  if (key.size() > kBlock) {
    const Sha256Digest d = Sha256::hash(key);
    std::copy(d.begin(), d.end(), k.begin());
  } else {
    std::copy(key.begin(), key.end(), k.begin());
  }

  std::array<std::uint8_t, kBlock> ipad{}, opad{};
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(data);
  const Sha256Digest inner_digest = inner.finish();

  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  return outer.finish();
}

}  // namespace rs::crypto
