// MD5 (RFC 1321), implemented from scratch.
//
// MD5 is cryptographically broken; it exists here only because legacy
// root-store formats (NSS certdata.txt trust objects) identify certificates
// by MD5 fingerprint, and because Table 3 of the paper measures when each
// root program purged MD5-signed roots.
#pragma once

#include <cstdint>
#include <span>

#include "src/crypto/digest.h"

namespace rs::crypto {

/// Incremental MD5 hasher.
class Md5 {
 public:
  Md5() noexcept;

  /// Absorbs `data`; may be called repeatedly.
  void update(std::span<const std::uint8_t> data) noexcept;

  /// Finalizes and returns the digest.  The hasher must not be used after.
  Md5Digest finish() noexcept;

  /// One-shot convenience.
  static Md5Digest hash(std::span<const std::uint8_t> data) noexcept;

 private:
  void compress(const std::uint8_t* block) noexcept;

  std::uint32_t state_[4];
  std::uint64_t length_ = 0;          // total bytes absorbed
  std::uint8_t buffer_[64];
  std::size_t buffered_ = 0;
};

}  // namespace rs::crypto
