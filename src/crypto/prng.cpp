#include "src/crypto/prng.h"

#include <bit>
#include <cmath>

#include "src/crypto/sha256.h"

namespace rs::crypto {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

Prng::Prng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Prng Prng::from_label(std::uint64_t seed, std::string_view label) noexcept {
  Sha256 h;
  std::uint8_t seed_bytes[8];
  for (int i = 0; i < 8; ++i) {
    seed_bytes[i] = static_cast<std::uint8_t>(seed >> (8 * i));
  }
  h.update({seed_bytes, 8});
  h.update({reinterpret_cast<const std::uint8_t*>(label.data()), label.size()});
  const Sha256Digest d = h.finish();
  std::uint64_t folded = 0;
  for (int i = 0; i < 8; ++i) {
    folded |= static_cast<std::uint64_t>(d[static_cast<std::size_t>(i)]) << (8 * i);
  }
  return Prng(folded);
}

std::uint64_t Prng::next() noexcept {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Prng::uniform(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless method with rejection.
  if (bound == 0) return 0;
  // 128-bit multiply (GNU extension; fine on every supported toolchain).
  __extension__ using uint128 = unsigned __int128;
  while (true) {
    const std::uint64_t x = next();
    const uint128 m = static_cast<uint128>(x) * static_cast<uint128>(bound);
    const std::uint64_t lo = static_cast<std::uint64_t>(m);
    if (lo >= bound || lo >= (0 - bound) % bound) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

std::int64_t Prng::uniform_range(std::int64_t lo, std::int64_t hi) noexcept {
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi - lo) + 1;  // hi >= lo required
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Prng::uniform01() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Prng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::uint64_t Prng::burst(double mean) noexcept {
  const double lambda_mean = mean > 1.0 ? mean - 1.0 : 0.0;
  if (lambda_mean <= 0.0) return 1;
  const double u = uniform01();
  const double e = -std::log(1.0 - u) * lambda_mean;
  return 1 + static_cast<std::uint64_t>(e);
}

void Prng::fill(std::span<std::uint8_t> out) noexcept {
  std::size_t i = 0;
  while (i < out.size()) {
    std::uint64_t x = next();
    for (int b = 0; b < 8 && i < out.size(); ++b, ++i) {
      out[i] = static_cast<std::uint8_t>(x);
      x >>= 8;
    }
  }
}

std::size_t Prng::pick_index(std::size_t size) noexcept {
  return static_cast<std::size_t>(uniform(size));
}

}  // namespace rs::crypto
