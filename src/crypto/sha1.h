// SHA-1 (FIPS 180-4), implemented from scratch.
//
// SHA-1 is deprecated for signatures but remains the identifier of record in
// several root-store formats: authroot.stl keys entries by SHA-1, NSS trust
// objects carry CKA_CERT_SHA1_HASH, and JKS v2 uses a SHA-1 integrity digest.
#pragma once

#include <cstdint>
#include <span>

#include "src/crypto/digest.h"

namespace rs::crypto {

/// Incremental SHA-1 hasher.
class Sha1 {
 public:
  Sha1() noexcept;

  void update(std::span<const std::uint8_t> data) noexcept;

  /// Finalizes and returns the digest.  The hasher must not be used after.
  Sha1Digest finish() noexcept;

  static Sha1Digest hash(std::span<const std::uint8_t> data) noexcept;

 private:
  void compress(const std::uint8_t* block) noexcept;

  std::uint32_t state_[5];
  std::uint64_t length_ = 0;
  std::uint8_t buffer_[64];
  std::size_t buffered_ = 0;
};

}  // namespace rs::crypto
