#include "src/crypto/sha1.h"

#include <bit>
#include <cstring>

namespace rs::crypto {

namespace {

constexpr std::uint32_t kInit[5] = {0x67452301u, 0xefcdab89u, 0x98badcfeu,
                                    0x10325476u, 0xc3d2e1f0u};

std::uint32_t load_be32(const std::uint8_t* p) noexcept {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

void store_be32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

}  // namespace

Sha1::Sha1() noexcept { std::memcpy(state_, kInit, sizeof(state_)); }

void Sha1::compress(const std::uint8_t* block) noexcept {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) w[i] = load_be32(block + i * 4);
  for (int i = 16; i < 80; ++i) {
    w[i] = std::rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3],
                e = state_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5a827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ed9eba1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8f1bbcdcu;
    } else {
      f = b ^ c ^ d;
      k = 0xca62c1d6u;
    }
    const std::uint32_t tmp = std::rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = std::rotl(b, 30);
    b = a;
    a = tmp;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

void Sha1::update(std::span<const std::uint8_t> data) noexcept {
  // An empty span may carry data() == nullptr, and passing that to memcpy
  // is undefined behaviour even with a zero count (found by UBSan via the
  // JKS fuzz harness hashing an empty store body).
  if (data.empty()) return;
  length_ += data.size();
  std::size_t off = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(data.size(), 64 - buffered_);
    std::memcpy(buffer_ + buffered_, data.data(), take);
    buffered_ += take;
    off = take;
    if (buffered_ == 64) {
      compress(buffer_);
      buffered_ = 0;
    }
  }
  while (off + 64 <= data.size()) {
    compress(data.data() + off);
    off += 64;
  }
  if (off < data.size()) {
    std::memcpy(buffer_, data.data() + off, data.size() - off);
    buffered_ = data.size() - off;
  }
}

Sha1Digest Sha1::finish() noexcept {
  const std::uint64_t bit_len = length_ * 8;
  const std::uint8_t pad = 0x80;
  update({&pad, 1});
  static constexpr std::uint8_t kZeros[64] = {};
  while (buffered_ != 56) {
    const std::size_t need = buffered_ < 56 ? 56 - buffered_ : 64 - buffered_ + 56;
    const std::size_t take = std::min<std::size_t>(need, 64 - buffered_);
    update({kZeros, take});
  }
  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>(bit_len >> (8 * (7 - i)));
  }
  update({len_bytes, 8});

  Sha1Digest out;
  for (int i = 0; i < 5; ++i) store_be32(out.data() + i * 4, state_[i]);
  return out;
}

Sha1Digest Sha1::hash(std::span<const std::uint8_t> data) noexcept {
  Sha1 h;
  h.update(data);
  return h.finish();
}

}  // namespace rs::crypto
