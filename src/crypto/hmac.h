// HMAC-SHA256 (RFC 2104), used by the synthetic-signature scheme.
//
// The paper performs no chain validation, so synthesized roots do not need
// real RSA/ECDSA signatures.  Instead, CertificateBuilder "signs" a
// TBSCertificate with HMAC-SHA256 keyed by the issuing CA's key seed — a
// deterministic stand-in that keeps signatures unique per (issuer, tbs) pair
// and detectably wrong when either changes (see DESIGN.md substitutions).
#pragma once

#include <cstdint>
#include <span>

#include "src/crypto/digest.h"

namespace rs::crypto {

/// HMAC-SHA256 of `data` under `key`.
Sha256Digest hmac_sha256(std::span<const std::uint8_t> key,
                         std::span<const std::uint8_t> data) noexcept;

}  // namespace rs::crypto
