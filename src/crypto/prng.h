// Deterministic PRNG for the ecosystem simulator.
//
// All synthetic data (CA universes, inclusion/removal timelines, key
// material) must be reproducible from a single seed so the benchmark
// harnesses print identical tables on every run.  SplitMix64 seeds a
// xoshiro256** generator (Blackman & Vigna), both implemented from scratch.
// std::mt19937 is deliberately avoided: its distributions are not
// specified bit-exactly across standard libraries.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace rs::crypto {

/// SplitMix64 step: advances `state` and returns the next output.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** PRNG with convenience distributions (all bit-exact).
class Prng {
 public:
  /// Seeds via SplitMix64 expansion of `seed`.
  explicit Prng(std::uint64_t seed) noexcept;

  /// Seeds from a string label (SHA-256 folded), so simulator entities can
  /// derive independent streams: Prng(derive(seed, "ca:LetsEncrypt")).
  static Prng from_label(std::uint64_t seed, std::string_view label) noexcept;

  /// Next raw 64-bit output.
  std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound); bound must be > 0.  Uses rejection
  /// sampling (Lemire) to avoid modulo bias.
  std::uint64_t uniform(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1) with 53-bit resolution.
  double uniform01() noexcept;

  /// Bernoulli trial with probability `p` (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// Geometric-ish positive count: 1 + floor(Exp(mean-1)) clamped to >= 1.
  /// Used for burst sizes (e.g., roots added per batch).
  std::uint64_t burst(double mean) noexcept;

  /// Fills `out` with random bytes.
  void fill(std::span<std::uint8_t> out) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Picks a uniformly random element index; requires non-empty size.
  std::size_t pick_index(std::size_t size) noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace rs::crypto
