#include "src/x509/certificate.h"

#include "src/crypto/md5.h"
#include "src/crypto/sha1.h"
#include "src/crypto/sha256.h"
#include "src/util/hex.h"

namespace rs::x509 {

using rs::asn1::Reader;
using rs::util::Result;

Result<Certificate> Certificate::parse(std::span<const std::uint8_t> der) {
  Certificate cert;
  cert.der_.assign(der.begin(), der.end());
  cert.sha256_ = rs::crypto::Sha256::hash(der);
  cert.sha1_ = rs::crypto::Sha1::hash(der);
  cert.md5_ = rs::crypto::Md5::hash(der);

  Reader top(der);
  auto outer = top.read_sequence();
  if (!outer) return outer.propagate<Certificate>();
  if (!top.at_end()) {
    return Result<Certificate>::err("trailing data after Certificate");
  }

  auto tbs = outer.value().read_sequence();
  if (!tbs) return tbs.propagate<Certificate>();
  Reader& t = tbs.value();

  // version [0] EXPLICIT INTEGER DEFAULT v1
  if (t.next_is(rs::asn1::context(0))) {
    auto v = t.read_context(0);
    if (!v) return v.propagate<Certificate>();
    auto ver = v.value().read_small_integer();
    if (!ver) return ver.propagate<Certificate>();
    if (ver.value() < 0 || ver.value() > 2) {
      return Result<Certificate>::err("unsupported certificate version");
    }
    cert.version_ = static_cast<int>(ver.value()) + 1;
  }

  auto serial = t.read_big_integer();
  if (!serial) return serial.propagate<Certificate>();
  cert.serial_ = std::move(serial).take();

  // signature AlgorithmIdentifier
  auto sig_alg = t.read_sequence();
  if (!sig_alg) return sig_alg.propagate<Certificate>();
  auto sig_oid = sig_alg.value().read_oid();
  if (!sig_oid) return sig_oid.propagate<Certificate>();
  cert.sig_alg_ = sig_oid.value();

  auto issuer = Name::parse(t);
  if (!issuer) return issuer.propagate<Certificate>();
  cert.issuer_ = std::move(issuer).take();

  auto validity_seq = t.read_sequence();
  if (!validity_seq) return validity_seq.propagate<Certificate>();
  auto nb = rs::asn1::read_time(validity_seq.value());
  if (!nb) return nb.propagate<Certificate>();
  auto na = rs::asn1::read_time(validity_seq.value());
  if (!na) return na.propagate<Certificate>();
  cert.validity_ = Validity{nb.value(), na.value()};

  auto subject = Name::parse(t);
  if (!subject) return subject.propagate<Certificate>();
  cert.subject_ = std::move(subject).take();

  auto spki = PublicKey::parse(t);
  if (!spki) return spki.propagate<Certificate>();
  cert.public_key_ = std::move(spki).take();

  // Optional issuerUniqueID [1], subjectUniqueID [2] — skipped if present.
  for (std::uint8_t n : {std::uint8_t{1}, std::uint8_t{2}}) {
    if (t.next_is(rs::asn1::context_primitive(n))) {
      auto skip = t.read(rs::asn1::context_primitive(n));
      if (!skip) return skip.propagate<Certificate>();
    }
  }

  // extensions [3] EXPLICIT SEQUENCE OF Extension
  if (t.next_is(rs::asn1::context(3))) {
    auto ext_wrap = t.read_context(3);
    if (!ext_wrap) return ext_wrap.propagate<Certificate>();
    auto ext_seq = ext_wrap.value().read_sequence();
    if (!ext_seq) return ext_seq.propagate<Certificate>();
    while (!ext_seq.value().at_end()) {
      auto one = ext_seq.value().read_sequence();
      if (!one) return one.propagate<Certificate>();
      Extension e;
      auto oid = one.value().read_oid();
      if (!oid) return oid.propagate<Certificate>();
      e.oid = std::move(oid).take();
      if (one.value().next_is(
              rs::asn1::primitive(rs::asn1::UniversalTag::kBoolean))) {
        auto crit = one.value().read_boolean();
        if (!crit) return crit.propagate<Certificate>();
        e.critical = crit.value();
      }
      auto value = one.value().read_octet_string();
      if (!value) return value.propagate<Certificate>();
      e.value = std::move(value).take();
      if (!one.value().at_end()) {
        return Result<Certificate>::err("trailing data in Extension");
      }
      cert.extensions_.push_back(std::move(e));
    }
  }
  if (!t.at_end()) {
    return Result<Certificate>::err("trailing data in TBSCertificate");
  }

  // signatureAlgorithm (must match TBS) + signatureValue
  auto outer_alg = outer.value().read_sequence();
  if (!outer_alg) return outer_alg.propagate<Certificate>();
  auto outer_oid = outer_alg.value().read_oid();
  if (!outer_oid) return outer_oid.propagate<Certificate>();
  if (outer_oid.value() != cert.sig_alg_) {
    return Result<Certificate>::err(
        "signatureAlgorithm mismatch between TBS and outer");
  }
  auto sig = outer.value().read_bit_string();
  if (!sig) return sig.propagate<Certificate>();
  cert.signature_ = std::move(sig.value().bytes);
  if (!outer.value().at_end()) {
    return Result<Certificate>::err("trailing data after signature");
  }
  return cert;
}

std::string Certificate::short_id() const {
  return rs::util::hex_encode(std::span(sha256_).first(4));
}

bool Certificate::is_self_issued() const { return issuer_ == subject_; }

bool Certificate::is_ca() const {
  const Extension* ext =
      find_extension(extensions_, rs::asn1::oids::basic_constraints());
  if (ext == nullptr) return version_ == 1;  // legacy v1 roots
  auto bc = BasicConstraints::parse(ext->value);
  return bc.ok() && bc.value().ca;
}

bool Certificate::is_expired_at(rs::util::Date on) const {
  return validity_.not_after.date < on;
}

bool Certificate::is_valid_at(rs::util::Date on) const {
  return validity_.not_before.date <= on && on <= validity_.not_after.date;
}

bool Certificate::has_md5_signature() const {
  return sig_alg_ == rs::asn1::oids::md5_with_rsa();
}

bool Certificate::has_weak_rsa_key() const {
  return public_key_.algorithm() == KeyAlgorithm::kRsa &&
         public_key_.bits() < 2048;
}

std::optional<ExtendedKeyUsage> Certificate::extended_key_usage() const {
  const Extension* ext =
      find_extension(extensions_, rs::asn1::oids::ext_key_usage());
  if (ext == nullptr) return std::nullopt;
  auto eku = ExtendedKeyUsage::parse(ext->value);
  if (!eku) return std::nullopt;
  return std::move(eku).take();
}

std::optional<CertificatePolicies> Certificate::certificate_policies() const {
  const Extension* ext =
      find_extension(extensions_, rs::asn1::oids::certificate_policies());
  if (ext == nullptr) return std::nullopt;
  auto policies = CertificatePolicies::parse(ext->value);
  if (!policies) return std::nullopt;
  return std::move(policies).take();
}

}  // namespace rs::x509
