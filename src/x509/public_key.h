// SubjectPublicKeyInfo modelling (RFC 5280 §4.1.2.7).
//
// Table 3 of the paper measures when each root program purged 1024-bit RSA
// roots, so the parser must recover RSA modulus sizes exactly.  Synthetic
// keys carry deterministic pseudo-random material of the correct shape; no
// cryptographic operations are ever performed on them (see DESIGN.md).
#pragma once

#include <compare>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/asn1/reader.h"
#include "src/asn1/writer.h"
#include "src/crypto/prng.h"
#include "src/util/result.h"

namespace rs::x509 {

/// Public key algorithm families observed in root stores.
enum class KeyAlgorithm : std::uint8_t {
  kRsa,
  kEcP256,
  kEcP384,
};

const char* to_string(KeyAlgorithm a) noexcept;

/// A parsed SubjectPublicKeyInfo.
class PublicKey {
 public:
  PublicKey() = default;

  /// Deterministically synthesizes an RSA key of `bits` (512/1024/2048/4096)
  /// from `seed_rng`: random modulus with high bit set, exponent 65537.
  static PublicKey synth_rsa(rs::crypto::Prng& seed_rng, unsigned bits);

  /// Deterministically synthesizes an EC key on P-256 or P-384.
  static PublicKey synth_ec(rs::crypto::Prng& seed_rng, KeyAlgorithm curve);

  KeyAlgorithm algorithm() const noexcept { return algorithm_; }

  /// Key strength in bits: RSA modulus size, or 256/384 for EC.
  unsigned bits() const noexcept { return bits_; }

  /// Raw subjectPublicKey BIT STRING payload (RSAPublicKey DER or EC point).
  const std::vector<std::uint8_t>& key_material() const noexcept {
    return material_;
  }

  /// Appends the SubjectPublicKeyInfo SEQUENCE to `w`.
  void encode(rs::asn1::Writer& w) const;

  /// Parses the next element of `r` as SubjectPublicKeyInfo.
  static rs::util::Result<PublicKey> parse(rs::asn1::Reader& r);

  friend bool operator==(const PublicKey&, const PublicKey&) = default;

 private:
  KeyAlgorithm algorithm_ = KeyAlgorithm::kRsa;
  unsigned bits_ = 0;
  std::vector<std::uint8_t> material_;
};

}  // namespace rs::x509
