// X.509 v3 extensions used in root certificates (RFC 5280 §4.2).
//
// Trust-purpose analysis (TLS server auth vs email vs code signing) reads
// the Extended Key Usage extension; CA-ness reads BasicConstraints; hygiene
// checks read KeyUsage.  Extensions round-trip as raw DER so unknown
// extensions survive re-encoding.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/asn1/oid.h"
#include "src/asn1/reader.h"
#include "src/asn1/writer.h"
#include "src/util/result.h"

namespace rs::x509 {

/// A raw extension: OID, criticality, and the inner extnValue DER (the
/// bytes inside the OCTET STRING wrapper).
struct Extension {
  rs::asn1::Oid oid;
  bool critical = false;
  std::vector<std::uint8_t> value;

  friend auto operator<=>(const Extension&, const Extension&) = default;
};

/// BasicConstraints (2.5.29.19).
struct BasicConstraints {
  bool ca = false;
  std::optional<std::int64_t> path_len;

  std::vector<std::uint8_t> encode() const;
  static rs::util::Result<BasicConstraints> parse(
      std::span<const std::uint8_t> der);
};

/// KeyUsage (2.5.29.15) bit flags (RFC 5280 bit positions).
struct KeyUsage {
  bool digital_signature = false;  // bit 0
  bool key_cert_sign = false;      // bit 5
  bool crl_sign = false;           // bit 6

  std::vector<std::uint8_t> encode() const;
  static rs::util::Result<KeyUsage> parse(std::span<const std::uint8_t> der);

  friend auto operator<=>(const KeyUsage&, const KeyUsage&) = default;
};

/// ExtendedKeyUsage (2.5.29.37): ordered list of purpose OIDs.
struct ExtendedKeyUsage {
  std::vector<rs::asn1::Oid> purposes;

  bool permits(const rs::asn1::Oid& purpose) const;

  std::vector<std::uint8_t> encode() const;
  static rs::util::Result<ExtendedKeyUsage> parse(
      std::span<const std::uint8_t> der);
};

/// CertificatePolicies (2.5.29.32): the policy OIDs a certificate asserts.
///
/// Root programs use these for EV recognition — the trust the paper notes
/// Mozilla manages *outside* certdata.txt (§3).  Only the policy
/// identifiers are modelled; qualifiers (CPS URIs, user notices) are
/// preserved opaquely by the raw Extension bytes when present.
struct CertificatePolicies {
  std::vector<rs::asn1::Oid> policy_ids;

  bool asserts(const rs::asn1::Oid& policy) const;

  std::vector<std::uint8_t> encode() const;
  static rs::util::Result<CertificatePolicies> parse(
      std::span<const std::uint8_t> der);
};

/// The anyPolicy identifier (2.5.29.32.0).
rs::asn1::Oid any_policy();

/// SubjectKeyIdentifier (2.5.29.14): an OCTET STRING key id.
struct SubjectKeyIdentifier {
  std::vector<std::uint8_t> key_id;

  std::vector<std::uint8_t> encode() const;
  static rs::util::Result<SubjectKeyIdentifier> parse(
      std::span<const std::uint8_t> der);
};

/// AuthorityKeyIdentifier (2.5.29.35), keyIdentifier form only.
struct AuthorityKeyIdentifier {
  std::vector<std::uint8_t> key_id;

  std::vector<std::uint8_t> encode() const;
  static rs::util::Result<AuthorityKeyIdentifier> parse(
      std::span<const std::uint8_t> der);
};

/// Finds an extension by OID in a list.
const Extension* find_extension(const std::vector<Extension>& exts,
                                const rs::asn1::Oid& oid);

}  // namespace rs::x509
