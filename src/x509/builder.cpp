#include "src/x509/builder.h"

#include <cassert>

#include "src/asn1/time.h"
#include "src/asn1/writer.h"
#include "src/crypto/hmac.h"
#include "src/crypto/prng.h"

namespace rs::x509 {

using rs::asn1::Oid;
using rs::asn1::Writer;

CertificateBuilder::CertificateBuilder() = default;

CertificateBuilder& CertificateBuilder::subject(Name n) {
  subject_ = std::move(n);
  return *this;
}
CertificateBuilder& CertificateBuilder::issuer(Name n) {
  issuer_ = std::move(n);
  return *this;
}
CertificateBuilder& CertificateBuilder::serial_number(std::uint64_t serial) {
  serial_ = serial;
  return *this;
}
CertificateBuilder& CertificateBuilder::not_before(rs::util::Date d) {
  not_before_ = d;
  return *this;
}
CertificateBuilder& CertificateBuilder::not_after(rs::util::Date d) {
  not_after_ = d;
  return *this;
}
CertificateBuilder& CertificateBuilder::signature_scheme(SignatureScheme s) {
  scheme_ = s;
  return *this;
}
CertificateBuilder& CertificateBuilder::rsa_bits(unsigned bits) {
  rsa_bits_ = bits;
  return *this;
}
CertificateBuilder& CertificateBuilder::version1(bool v1) {
  version1_ = v1;
  return *this;
}
CertificateBuilder& CertificateBuilder::add_eku(std::vector<Oid> purposes) {
  ExtendedKeyUsage eku{std::move(purposes)};
  extensions_.push_back(
      Extension{rs::asn1::oids::ext_key_usage(), false, eku.encode()});
  return *this;
}
CertificateBuilder& CertificateBuilder::add_policies(
    std::vector<Oid> policy_ids) {
  CertificatePolicies policies{std::move(policy_ids)};
  extensions_.push_back(Extension{rs::asn1::oids::certificate_policies(),
                                  false, policies.encode()});
  return *this;
}

CertificateBuilder& CertificateBuilder::add_extension(Extension ext) {
  extensions_.push_back(std::move(ext));
  return *this;
}
CertificateBuilder& CertificateBuilder::key_seed(std::uint64_t seed) {
  key_seed_ = seed;
  return *this;
}

namespace {

Oid scheme_oid(SignatureScheme s) {
  switch (s) {
    case SignatureScheme::kMd5Rsa:
      return rs::asn1::oids::md5_with_rsa();
    case SignatureScheme::kSha1Rsa:
      return rs::asn1::oids::sha1_with_rsa();
    case SignatureScheme::kSha256Rsa:
      return rs::asn1::oids::sha256_with_rsa();
    case SignatureScheme::kEcdsaSha256:
      return rs::asn1::oids::ecdsa_with_sha256();
  }
  return rs::asn1::oids::sha256_with_rsa();
}

void encode_algorithm(Writer& w, SignatureScheme s) {
  Writer alg;
  alg.add_oid(scheme_oid(s));
  if (s != SignatureScheme::kEcdsaSha256) alg.add_null();
  w.add_sequence(alg);
}

}  // namespace

std::vector<std::uint8_t> CertificateBuilder::build_der() const {
  assert(!subject_.empty() && "builder requires a subject name");
  assert(not_before_ <= not_after_ && "validity window inverted");

  rs::crypto::Prng key_rng(key_seed_);
  const PublicKey key =
      scheme_ == SignatureScheme::kEcdsaSha256
          ? PublicKey::synth_ec(key_rng, KeyAlgorithm::kEcP256)
          : PublicKey::synth_rsa(key_rng, rsa_bits_);

  const Name& issuer = issuer_ ? *issuer_ : subject_;

  Writer tbs;
  if (!version1_) {
    Writer v;
    v.add_small_integer(2);  // v3
    tbs.add_context(0, v);
  }
  tbs.add_small_integer(static_cast<std::int64_t>(serial_));
  encode_algorithm(tbs, scheme_);
  issuer.encode(tbs);
  {
    Writer validity;
    rs::asn1::write_time(validity, rs::asn1::at_midnight(not_before_));
    rs::asn1::write_time(validity, rs::asn1::at_midnight(not_after_));
    tbs.add_sequence(validity);
  }
  subject_.encode(tbs);
  key.encode(tbs);

  std::vector<Extension> exts = extensions_;
  if (!version1_) {
    // Roots carry BasicConstraints CA:TRUE (critical) and key-signing usage.
    bool has_bc = find_extension(exts, rs::asn1::oids::basic_constraints());
    bool has_ku = find_extension(exts, rs::asn1::oids::key_usage());
    if (!has_bc) {
      BasicConstraints bc{true, std::nullopt};
      exts.insert(exts.begin(), Extension{rs::asn1::oids::basic_constraints(),
                                          true, bc.encode()});
    }
    if (!has_ku) {
      KeyUsage ku;
      ku.key_cert_sign = true;
      ku.crl_sign = true;
      exts.push_back(Extension{rs::asn1::oids::key_usage(), true, ku.encode()});
    }
    Writer ext_list;
    for (const auto& e : exts) {
      Writer one;
      one.add_oid(e.oid);
      if (e.critical) one.add_boolean(true);
      one.add_octet_string(e.value);
      ext_list.add_sequence(one);
    }
    Writer ext_seq;
    ext_seq.add_sequence(ext_list);
    tbs.add_context(3, ext_seq);
  }

  Writer cert;
  Writer tbs_wrapped;
  tbs_wrapped.add_sequence(tbs);
  const std::vector<std::uint8_t> tbs_der = tbs_wrapped.bytes();
  cert.add_raw(tbs_der);

  encode_algorithm(cert, scheme_);

  // Simulated signature: HMAC-SHA256(issuer key seed, TBS), repeated to the
  // width a real signature of this scheme would occupy.
  std::uint8_t seed_bytes[8];
  for (int i = 0; i < 8; ++i) {
    seed_bytes[i] = static_cast<std::uint8_t>(key_seed_ >> (8 * i));
  }
  const auto mac = rs::crypto::hmac_sha256({seed_bytes, 8}, tbs_der);
  const std::size_t sig_len =
      scheme_ == SignatureScheme::kEcdsaSha256 ? 72 : rsa_bits_ / 8;
  std::vector<std::uint8_t> sig(sig_len);
  for (std::size_t i = 0; i < sig_len; ++i) sig[i] = mac[i % mac.size()];
  cert.add_bit_string(sig);

  Writer top;
  top.add_sequence(cert);
  return std::move(top).take();
}

Certificate CertificateBuilder::build() const {
  auto parsed = Certificate::parse(build_der());
  assert(parsed.ok() && "builder must emit parseable DER");
  return std::move(parsed).take();
}

}  // namespace rs::x509
