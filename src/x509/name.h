// X.501 distinguished names (RFC 5280 §4.1.2.4).
//
// A Name is an ordered sequence of relative distinguished names; this module
// models the common single-attribute-per-RDN shape used by every root
// certificate in the study, with DER round-tripping and RFC 4514-style
// display.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/asn1/oid.h"
#include "src/asn1/reader.h"
#include "src/asn1/writer.h"
#include "src/util/result.h"

namespace rs::x509 {

/// How an attribute value is encoded in DER.
enum class StringKind : std::uint8_t {
  kUtf8,
  kPrintable,
  kIa5,
  kT61,
};

/// One AttributeTypeAndValue.
struct NameAttribute {
  rs::asn1::Oid type;
  std::string value;
  StringKind kind = StringKind::kUtf8;

  friend auto operator<=>(const NameAttribute&, const NameAttribute&) = default;
};

/// An X.501 Name: ordered RDN sequence (one attribute per RDN).
class Name {
 public:
  Name() = default;
  explicit Name(std::vector<NameAttribute> attrs) : attrs_(std::move(attrs)) {}

  /// Fluent construction for builders and the simulator.
  Name& add(rs::asn1::Oid type, std::string value,
            StringKind kind = StringKind::kUtf8);
  Name& add_common_name(std::string cn);
  Name& add_country(std::string c);        // encoded PrintableString
  Name& add_organization(std::string o);

  const std::vector<NameAttribute>& attributes() const noexcept {
    return attrs_;
  }
  bool empty() const noexcept { return attrs_.empty(); }

  /// First value of the given attribute type, if present.
  std::optional<std::string_view> find(const rs::asn1::Oid& type) const;
  std::optional<std::string_view> common_name() const;
  std::optional<std::string_view> organization() const;
  std::optional<std::string_view> country() const;

  /// RFC 4514-flavoured display: "CN=Foo Root CA, O=Foo, C=US".
  std::string to_string() const;

  /// RFC 5280 §7.1 name matching for chain building: attribute types must
  /// match exactly (in order), attribute values compare caseIgnoreMatch —
  /// ASCII case-insensitive, leading/trailing whitespace stripped, internal
  /// whitespace runs collapsed to one space.  The string encoding kind is
  /// ignored (a PrintableString and a UTF8String with the same folded value
  /// match).  operator== stays byte-exact; equivalent() is what issuer/
  /// subject chaining must use (a mixed-case issuer still chains).
  [[nodiscard]] bool equivalent(const Name& other) const;

  /// Appends this name's DER (SEQUENCE OF RDN) to `w`.
  void encode(rs::asn1::Writer& w) const;

  /// Parses a Name from the next element of `r`.
  static rs::util::Result<Name> parse(rs::asn1::Reader& r);

  friend auto operator<=>(const Name&, const Name&) = default;

 private:
  std::vector<NameAttribute> attrs_;
};

}  // namespace rs::x509
