#include "src/x509/extensions.h"

#include "src/asn1/tag.h"

namespace rs::x509 {

using rs::asn1::Oid;
using rs::asn1::Reader;
using rs::asn1::Writer;
using rs::util::Result;

std::vector<std::uint8_t> BasicConstraints::encode() const {
  Writer body;
  if (ca) body.add_boolean(true);  // DEFAULT FALSE omitted in DER
  if (path_len) body.add_small_integer(*path_len);
  Writer seq;
  seq.add_sequence(body);
  return std::move(seq).take();
}

Result<BasicConstraints> BasicConstraints::parse(
    std::span<const std::uint8_t> der) {
  Reader r(der);
  auto seq = r.read_sequence();
  if (!seq) return seq.propagate<BasicConstraints>();
  BasicConstraints bc;
  if (seq.value().next_is(rs::asn1::primitive(rs::asn1::UniversalTag::kBoolean))) {
    auto ca = seq.value().read_boolean();
    if (!ca) return ca.propagate<BasicConstraints>();
    bc.ca = ca.value();
  }
  if (!seq.value().at_end()) {
    auto len = seq.value().read_small_integer();
    if (!len) return len.propagate<BasicConstraints>();
    bc.path_len = len.value();
  }
  if (!seq.value().at_end()) {
    return Result<BasicConstraints>::err("trailing data in BasicConstraints");
  }
  return bc;
}

std::vector<std::uint8_t> KeyUsage::encode() const {
  // Named-bit-list DER: trailing zero bits are truncated.
  std::uint8_t bits = 0;
  if (digital_signature) bits |= 0x80;  // bit 0
  if (key_cert_sign) bits |= 0x04;      // bit 5
  if (crl_sign) bits |= 0x02;           // bit 6
  int last_set = -1;
  for (int i = 0; i < 8; ++i) {
    if (bits & (0x80 >> i)) last_set = i;
  }
  Writer w;
  if (last_set < 0) {
    w.add_bit_string({}, 0);
  } else {
    const std::uint8_t unused = static_cast<std::uint8_t>(7 - last_set);
    const std::uint8_t payload =
        static_cast<std::uint8_t>((bits >> unused) << unused);
    w.add_bit_string({&payload, 1}, unused);
  }
  return std::move(w).take();
}

Result<KeyUsage> KeyUsage::parse(std::span<const std::uint8_t> der) {
  Reader r(der);
  auto bs = r.read_bit_string();
  if (!bs) return bs.propagate<KeyUsage>();
  KeyUsage ku;
  if (!bs.value().bytes.empty()) {
    const std::uint8_t b0 = bs.value().bytes[0];
    ku.digital_signature = (b0 & 0x80) != 0;
    ku.key_cert_sign = (b0 & 0x04) != 0;
    ku.crl_sign = (b0 & 0x02) != 0;
  }
  return ku;
}

bool ExtendedKeyUsage::permits(const Oid& purpose) const {
  for (const auto& p : purposes) {
    if (p == purpose || p == rs::asn1::oids::eku_any()) return true;
  }
  return false;
}

std::vector<std::uint8_t> ExtendedKeyUsage::encode() const {
  Writer body;
  for (const auto& p : purposes) body.add_oid(p);
  Writer seq;
  seq.add_sequence(body);
  return std::move(seq).take();
}

Result<ExtendedKeyUsage> ExtendedKeyUsage::parse(
    std::span<const std::uint8_t> der) {
  Reader r(der);
  auto seq = r.read_sequence();
  if (!seq) return seq.propagate<ExtendedKeyUsage>();
  ExtendedKeyUsage eku;
  while (!seq.value().at_end()) {
    auto oid = seq.value().read_oid();
    if (!oid) return oid.propagate<ExtendedKeyUsage>();
    eku.purposes.push_back(std::move(oid).take());
  }
  if (eku.purposes.empty()) {
    return Result<ExtendedKeyUsage>::err("EKU must list at least one purpose");
  }
  return eku;
}

rs::asn1::Oid any_policy() {
  return *Oid::from_dotted("2.5.29.32.0");
}

bool CertificatePolicies::asserts(const Oid& policy) const {
  for (const auto& p : policy_ids) {
    if (p == policy || p == any_policy()) return true;
  }
  return false;
}

std::vector<std::uint8_t> CertificatePolicies::encode() const {
  Writer body;
  for (const auto& p : policy_ids) {
    Writer info;
    info.add_oid(p);
    body.add_sequence(info);
  }
  Writer seq;
  seq.add_sequence(body);
  return std::move(seq).take();
}

Result<CertificatePolicies> CertificatePolicies::parse(
    std::span<const std::uint8_t> der) {
  Reader r(der);
  auto seq = r.read_sequence();
  if (!seq) return seq.propagate<CertificatePolicies>();
  CertificatePolicies out;
  while (!seq.value().at_end()) {
    auto info = seq.value().read_sequence();
    if (!info) return info.propagate<CertificatePolicies>();
    auto oid = info.value().read_oid();
    if (!oid) return oid.propagate<CertificatePolicies>();
    out.policy_ids.push_back(std::move(oid).take());
    // policyQualifiers, if present, are skipped opaquely.
    while (!info.value().at_end()) {
      auto skip = info.value().read_any();
      if (!skip) return skip.propagate<CertificatePolicies>();
    }
  }
  if (out.policy_ids.empty()) {
    return Result<CertificatePolicies>::err(
        "CertificatePolicies must list at least one policy");
  }
  return out;
}

std::vector<std::uint8_t> SubjectKeyIdentifier::encode() const {
  Writer w;
  w.add_octet_string(key_id);
  return std::move(w).take();
}

Result<SubjectKeyIdentifier> SubjectKeyIdentifier::parse(
    std::span<const std::uint8_t> der) {
  Reader r(der);
  auto os = r.read_octet_string();
  if (!os) return os.propagate<SubjectKeyIdentifier>();
  return SubjectKeyIdentifier{std::move(os).take()};
}

std::vector<std::uint8_t> AuthorityKeyIdentifier::encode() const {
  Writer body;
  body.add_context_primitive(0, key_id);  // [0] keyIdentifier
  Writer seq;
  seq.add_sequence(body);
  return std::move(seq).take();
}

Result<AuthorityKeyIdentifier> AuthorityKeyIdentifier::parse(
    std::span<const std::uint8_t> der) {
  Reader r(der);
  auto seq = r.read_sequence();
  if (!seq) return seq.propagate<AuthorityKeyIdentifier>();
  AuthorityKeyIdentifier aki;
  if (seq.value().next_is(rs::asn1::context_primitive(0))) {
    auto el = seq.value().read(rs::asn1::context_primitive(0));
    if (!el) return el.propagate<AuthorityKeyIdentifier>();
    aki.key_id.assign(el.value().content.begin(), el.value().content.end());
  }
  return aki;
}

const Extension* find_extension(const std::vector<Extension>& exts,
                                const Oid& oid) {
  for (const auto& e : exts) {
    if (e.oid == oid) return &e;
  }
  return nullptr;
}

}  // namespace rs::x509
