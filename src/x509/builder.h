// Certificate synthesis for the simulated ecosystem.
//
// The paper's dataset is 20 years of real root certificates we cannot ship;
// the builder manufactures structurally equivalent roots: correct DER, v1 or
// v3, RSA or EC keys of chosen size, MD5/SHA-1/SHA-256 signature OIDs,
// CA extensions, and deterministic key material from a seed.  Signatures are
// HMAC-SHA256 over the TBS bytes keyed by the issuer's key seed (padded to
// the width a real signature would have) — see DESIGN.md substitutions.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/asn1/oid.h"
#include "src/util/date.h"
#include "src/x509/certificate.h"
#include "src/x509/name.h"
#include "src/x509/public_key.h"

namespace rs::x509 {

/// Signature algorithm families the builder can emit.
enum class SignatureScheme : std::uint8_t {
  kMd5Rsa,
  kSha1Rsa,
  kSha256Rsa,
  kEcdsaSha256,
};

/// Fluent builder for self-signed (root) certificates.
///
/// Every setter returns *this.  build() is deterministic: the same
/// configuration and seed always produce byte-identical DER.
class CertificateBuilder {
 public:
  CertificateBuilder();

  CertificateBuilder& subject(Name n);
  /// Issuer defaults to the subject (self-signed roots).
  CertificateBuilder& issuer(Name n);
  CertificateBuilder& serial_number(std::uint64_t serial);
  CertificateBuilder& not_before(rs::util::Date d);
  CertificateBuilder& not_after(rs::util::Date d);
  CertificateBuilder& signature_scheme(SignatureScheme s);
  /// RSA modulus bits (default 2048).  Ignored for ECDSA schemes, which use
  /// P-256.
  CertificateBuilder& rsa_bits(unsigned bits);
  /// v1 certificates omit extensions entirely (common for pre-2000 roots).
  CertificateBuilder& version1(bool v1);
  /// Adds an Extended Key Usage extension with the given purposes.
  CertificateBuilder& add_eku(std::vector<rs::asn1::Oid> purposes);
  /// Adds a CertificatePolicies extension (e.g. an EV policy OID).
  CertificateBuilder& add_policies(std::vector<rs::asn1::Oid> policy_ids);
  /// Adds an arbitrary pre-encoded extension.
  CertificateBuilder& add_extension(Extension ext);
  /// Seed for deterministic key material and signature bytes.
  CertificateBuilder& key_seed(std::uint64_t seed);

  /// Produces the DER certificate.  Never fails for a consistent
  /// configuration; programming errors (e.g. not_after < not_before) assert.
  std::vector<std::uint8_t> build_der() const;

  /// Convenience: build_der() then Certificate::parse (which must succeed).
  Certificate build() const;

 private:
  Name subject_;
  std::optional<Name> issuer_;
  std::uint64_t serial_ = 1;
  rs::util::Date not_before_ = rs::util::Date::ymd(2000, 1, 1);
  rs::util::Date not_after_ = rs::util::Date::ymd(2030, 1, 1);
  SignatureScheme scheme_ = SignatureScheme::kSha256Rsa;
  unsigned rsa_bits_ = 2048;
  bool version1_ = false;
  std::vector<Extension> extensions_;
  std::uint64_t key_seed_ = 0;
};

}  // namespace rs::x509
