#include "src/x509/lint.h"

#include <algorithm>

#include "src/asn1/oid.h"

namespace rs::x509 {

const char* to_string(LintSeverity s) noexcept {
  switch (s) {
    case LintSeverity::kInfo:
      return "info";
    case LintSeverity::kWarning:
      return "warning";
    case LintSeverity::kError:
      return "error";
  }
  return "?";
}

namespace {

void add(std::vector<LintFinding>& out, std::string check, LintSeverity sev,
         std::string message) {
  out.push_back(LintFinding{std::move(check), sev, std::move(message)});
}

}  // namespace

std::vector<LintFinding> lint_root(const Certificate& cert,
                                   const LintOptions& options) {
  std::vector<LintFinding> out;
  namespace oids = rs::asn1::oids;

  // --- Signature algorithm -------------------------------------------------
  if (cert.signature_algorithm() == oids::md5_with_rsa()) {
    add(out, "root.md5_signature", LintSeverity::kError,
        "signature algorithm is md5WithRSAEncryption (forbidden)");
  } else if (cert.signature_algorithm() == oids::sha1_with_rsa()) {
    add(out, "root.sha1_signature", LintSeverity::kWarning,
        "signature algorithm is sha1WithRSAEncryption (deprecated)");
  }

  // --- Key strength ---------------------------------------------------------
  const auto& key = cert.public_key();
  if (key.algorithm() == KeyAlgorithm::kRsa) {
    if (key.bits() < 2048) {
      add(out, "root.rsa_key_too_small", LintSeverity::kError,
          "RSA modulus is " + std::to_string(key.bits()) +
              " bits (BRs require >= 2048)");
    } else if (key.bits() < 3072) {
      add(out, "root.rsa_2048", LintSeverity::kInfo,
          "RSA-2048 root; consider >= 3072 or EC for new roots");
    }
  }

  // --- Serial number ---------------------------------------------------------
  if (cert.serial().empty()) {
    add(out, "root.serial_empty", LintSeverity::kError,
        "serialNumber has no content octets");
  } else {
    if (cert.serial()[0] & 0x80) {
      add(out, "root.serial_negative", LintSeverity::kError,
          "serialNumber is negative (RFC 5280 requires positive)");
    }
    if (cert.serial().size() > 20) {
      add(out, "root.serial_too_long", LintSeverity::kError,
          "serialNumber exceeds 20 octets");
    }
  }

  // --- Validity ---------------------------------------------------------------
  const auto& validity = cert.validity();
  if (validity.not_after < validity.not_before) {
    add(out, "root.validity_inverted", LintSeverity::kError,
        "notAfter precedes notBefore");
  } else {
    const double years = rs::util::years_between(validity.not_before.date,
                                                 validity.not_after.date);
    if (years > options.max_validity_years) {
      add(out, "root.validity_excessive", LintSeverity::kWarning,
          "validity spans " + std::to_string(static_cast<int>(years)) +
              " years (> " + std::to_string(options.max_validity_years) + ")");
    }
  }
  if (cert.is_expired_at(options.now)) {
    add(out, "root.expired", LintSeverity::kWarning,
        "expired on " + validity.not_after.date.to_string());
  }

  // --- Names ------------------------------------------------------------------
  if (cert.subject().empty()) {
    add(out, "root.empty_subject", LintSeverity::kError,
        "subject distinguished name is empty");
  } else if (!cert.subject().common_name() &&
             !cert.subject().organization()) {
    add(out, "root.anonymous_subject", LintSeverity::kWarning,
        "subject carries neither commonName nor organizationName");
  }
  if (!cert.is_self_issued()) {
    add(out, "root.not_self_issued", LintSeverity::kWarning,
        "issuer differs from subject (cross-certificate shipped as a root?)");
  }

  // --- Version / extensions ----------------------------------------------------
  if (cert.version() == 1) {
    add(out, "root.v1_certificate", LintSeverity::kWarning,
        "X.509 v1 certificate: no extensions, CA-ness only by convention");
  } else {
    const Extension* bc =
        find_extension(cert.extensions(), oids::basic_constraints());
    if (bc == nullptr) {
      add(out, "root.missing_basic_constraints", LintSeverity::kError,
          "v3 root lacks BasicConstraints");
    } else {
      if (!bc->critical) {
        add(out, "root.basic_constraints_not_critical", LintSeverity::kWarning,
            "BasicConstraints should be critical in CA certificates");
      }
      auto parsed = BasicConstraints::parse(bc->value);
      if (!parsed.ok() || !parsed.value().ca) {
        add(out, "root.not_a_ca", LintSeverity::kError,
            "BasicConstraints does not assert CA:TRUE");
      }
    }
    const Extension* ku = find_extension(cert.extensions(), oids::key_usage());
    if (ku == nullptr) {
      add(out, "root.missing_key_usage", LintSeverity::kWarning,
          "v3 root lacks KeyUsage");
    } else {
      auto parsed = KeyUsage::parse(ku->value);
      if (parsed.ok() && !parsed.value().key_cert_sign) {
        add(out, "root.no_keycertsign", LintSeverity::kError,
            "KeyUsage lacks keyCertSign");
      }
    }
    // EKU in a root is an anti-pattern: the BRs scope EKU to intermediates.
    if (find_extension(cert.extensions(), oids::ext_key_usage()) != nullptr) {
      add(out, "root.eku_present", LintSeverity::kInfo,
          "root carries an EKU extension (BRs scope EKU to intermediates)");
    }
    // RFC 5280 §4.2: a certificate MUST NOT include more than one instance
    // of a particular extension.
    for (std::size_t i = 0; i < cert.extensions().size(); ++i) {
      for (std::size_t j = i + 1; j < cert.extensions().size(); ++j) {
        if (cert.extensions()[i].oid == cert.extensions()[j].oid) {
          add(out, "root.duplicate_extension", LintSeverity::kError,
              "extension " + cert.extensions()[i].oid.to_dotted() +
                  " appears more than once");
        }
      }
    }
    // RFC 5280 §4.2.1.2: CA certificates MUST include SubjectKeyIdentifier.
    if (find_extension(cert.extensions(), oids::subject_key_id()) == nullptr) {
      add(out, "root.missing_ski", LintSeverity::kInfo,
          "CA certificate lacks SubjectKeyIdentifier (RFC 5280 requires it)");
    }
  }

  std::sort(out.begin(), out.end(),
            [](const LintFinding& a, const LintFinding& b) {
              if (a.severity != b.severity) {
                return static_cast<int>(a.severity) >
                       static_cast<int>(b.severity);
              }
              return a.check < b.check;
            });
  return out;
}

int lint_score(const std::vector<LintFinding>& findings) noexcept {
  int score = 0;
  for (const auto& f : findings) {
    switch (f.severity) {
      case LintSeverity::kError:
        score += 10;
        break;
      case LintSeverity::kWarning:
        score += 3;
        break;
      case LintSeverity::kInfo:
        score += 1;
        break;
    }
  }
  return score;
}

}  // namespace rs::x509
