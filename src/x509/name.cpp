#include "src/x509/name.h"

namespace rs::x509 {
namespace {

bool is_fold_space(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

char ascii_lower(char c) noexcept {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

/// caseIgnoreMatch preparation (RFC 5280 §7.1 / RFC 4518 in spirit, ASCII
/// subset): trim outer whitespace, collapse inner runs, fold case.
std::string case_ignore_fold(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  bool pending_space = false;
  for (const char c : value) {
    if (is_fold_space(c)) {
      if (!out.empty()) pending_space = true;
      continue;
    }
    if (pending_space) {
      out.push_back(' ');
      pending_space = false;
    }
    out.push_back(ascii_lower(c));
  }
  return out;
}

}  // namespace

using rs::asn1::Oid;
using rs::asn1::Reader;
using rs::asn1::UniversalTag;
using rs::asn1::Writer;
using rs::util::Result;

Name& Name::add(Oid type, std::string value, StringKind kind) {
  attrs_.push_back(NameAttribute{std::move(type), std::move(value), kind});
  return *this;
}

Name& Name::add_common_name(std::string cn) {
  return add(rs::asn1::oids::common_name(), std::move(cn), StringKind::kUtf8);
}

Name& Name::add_country(std::string c) {
  return add(rs::asn1::oids::country(), std::move(c), StringKind::kPrintable);
}

Name& Name::add_organization(std::string o) {
  return add(rs::asn1::oids::organization(), std::move(o), StringKind::kUtf8);
}

std::optional<std::string_view> Name::find(const Oid& type) const {
  for (const auto& a : attrs_) {
    if (a.type == type) return a.value;
  }
  return std::nullopt;
}

std::optional<std::string_view> Name::common_name() const {
  return find(rs::asn1::oids::common_name());
}
std::optional<std::string_view> Name::organization() const {
  return find(rs::asn1::oids::organization());
}
std::optional<std::string_view> Name::country() const {
  return find(rs::asn1::oids::country());
}

std::string Name::to_string() const {
  std::string out;
  for (const auto& a : attrs_) {
    if (!out.empty()) out += ", ";
    if (a.type == rs::asn1::oids::common_name()) {
      out += "CN=";
    } else if (a.type == rs::asn1::oids::country()) {
      out += "C=";
    } else if (a.type == rs::asn1::oids::organization()) {
      out += "O=";
    } else if (a.type == rs::asn1::oids::organizational_unit()) {
      out += "OU=";
    } else {
      out += a.type.to_dotted() + "=";
    }
    out += a.value;
  }
  return out;
}

bool Name::equivalent(const Name& other) const {
  if (attrs_.size() != other.attrs_.size()) return false;
  for (std::size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i].type != other.attrs_[i].type) return false;
    if (case_ignore_fold(attrs_[i].value) !=
        case_ignore_fold(other.attrs_[i].value)) {
      return false;
    }
  }
  return true;
}

void Name::encode(Writer& w) const {
  Writer rdns;
  for (const auto& a : attrs_) {
    Writer atv;
    atv.add_oid(a.type);
    switch (a.kind) {
      case StringKind::kUtf8:
        atv.add_utf8_string(a.value);
        break;
      case StringKind::kPrintable:
        atv.add_printable_string(a.value);
        break;
      case StringKind::kIa5:
        atv.add_ia5_string(a.value);
        break;
      case StringKind::kT61:
        atv.add_tlv(rs::asn1::primitive(UniversalTag::kT61String),
                    {reinterpret_cast<const std::uint8_t*>(a.value.data()),
                     a.value.size()});
        break;
    }
    Writer atv_seq;
    atv_seq.add_sequence(atv);
    rdns.add_set(atv_seq);
  }
  w.add_sequence(rdns);
}

Result<Name> Name::parse(Reader& r) {
  auto seq = r.read_sequence();
  if (!seq) return seq.propagate<Name>();
  Reader& rdn_seq = seq.value();

  std::vector<NameAttribute> attrs;
  while (!rdn_seq.at_end()) {
    auto set = rdn_seq.read_set();
    if (!set) return set.propagate<Name>();
    Reader& rdn = set.value();
    // The study's certificates use single-attribute RDNs; accept multiple
    // attributes per RDN and flatten in order.
    while (!rdn.at_end()) {
      auto atv = rdn.read_sequence();
      if (!atv) return atv.propagate<Name>();
      auto type = atv.value().read_oid();
      if (!type) return type.propagate<Name>();
      auto tag = atv.value().peek_tag();
      if (!tag) return tag.propagate<Name>();
      StringKind kind = StringKind::kUtf8;
      switch (tag.value()) {
        case rs::asn1::primitive(UniversalTag::kPrintableString):
          kind = StringKind::kPrintable;
          break;
        case rs::asn1::primitive(UniversalTag::kIa5String):
          kind = StringKind::kIa5;
          break;
        case rs::asn1::primitive(UniversalTag::kT61String):
          kind = StringKind::kT61;
          break;
        default:
          kind = StringKind::kUtf8;
          break;
      }
      auto value = atv.value().read_string();
      if (!value) return value.propagate<Name>();
      if (!atv.value().at_end()) {
        return Result<Name>::err("trailing data in AttributeTypeAndValue");
      }
      attrs.push_back(
          NameAttribute{std::move(type).take(), std::move(value).take(), kind});
    }
  }
  return Name(std::move(attrs));
}

}  // namespace rs::x509
