// Baseline-Requirements-style root certificate linting.
//
// §7 of the paper calls for data-informed, objective root trust and cites
// ZLint as the direction.  This module implements the subset of checks that
// apply to *root* certificates and that the study's own hygiene analysis
// cares about: signature algorithm, key strength, validity shape, serial
// rules, CA extensions.  Each finding carries a severity so stores can be
// scored mechanically (see analysis/hygiene and examples/store_audit).
#pragma once

#include <string>
#include <vector>

#include "src/util/date.h"
#include "src/x509/certificate.h"

namespace rs::x509 {

/// Finding severity, ZLint-flavoured.
enum class LintSeverity : std::uint8_t {
  kInfo,     // noteworthy, not wrong
  kWarning,  // legacy/deprecated practice
  kError,    // violates the BRs / RFC 5280 expectations for roots
};

const char* to_string(LintSeverity s) noexcept;

/// One lint finding.
struct LintFinding {
  /// Stable check id, e.g. "root.md5_signature".
  std::string check;
  LintSeverity severity = LintSeverity::kInfo;
  std::string message;
};

/// Lint configuration.
struct LintOptions {
  /// Reference date for expiry checks.
  rs::util::Date now = rs::util::Date::ymd(2021, 5, 1);
  /// Maximum root validity span before a warning (years).  The BRs do not
  /// cap root lifetimes, but >30y is flagged by every modern review.
  int max_validity_years = 30;
};

/// Runs all root-certificate checks; findings are ordered by severity
/// (errors first), then check id.
std::vector<LintFinding> lint_root(const Certificate& cert,
                                   const LintOptions& options = {});

/// Aggregate score used by store-level audits: errors weigh 10, warnings 3,
/// infos 1; zero is a perfectly clean root.
int lint_score(const std::vector<LintFinding>& findings) noexcept;

}  // namespace rs::x509
