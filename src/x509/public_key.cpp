#include "src/x509/public_key.h"

#include "src/asn1/oid.h"

namespace rs::x509 {

using rs::asn1::Oid;
using rs::asn1::Reader;
using rs::asn1::Writer;
using rs::util::Result;

const char* to_string(KeyAlgorithm a) noexcept {
  switch (a) {
    case KeyAlgorithm::kRsa:
      return "RSA";
    case KeyAlgorithm::kEcP256:
      return "EC P-256";
    case KeyAlgorithm::kEcP384:
      return "EC P-384";
  }
  return "?";
}

PublicKey PublicKey::synth_rsa(rs::crypto::Prng& seed_rng, unsigned bits) {
  PublicKey k;
  k.algorithm_ = KeyAlgorithm::kRsa;
  k.bits_ = bits;

  std::vector<std::uint8_t> modulus(bits / 8);
  seed_rng.fill(modulus);
  if (!modulus.empty()) {
    modulus.front() |= 0x80;  // exact bit length
    modulus.back() |= 0x01;   // odd, as a real modulus would be
  }

  // RSAPublicKey ::= SEQUENCE { modulus INTEGER, publicExponent INTEGER }
  Writer body;
  body.add_unsigned_big_integer(modulus);
  body.add_small_integer(65537);
  Writer rsa_pub;
  rsa_pub.add_sequence(body);
  k.material_ = std::move(rsa_pub).take();
  return k;
}

PublicKey PublicKey::synth_ec(rs::crypto::Prng& seed_rng, KeyAlgorithm curve) {
  PublicKey k;
  k.algorithm_ = curve;
  k.bits_ = curve == KeyAlgorithm::kEcP256 ? 256 : 384;

  // Uncompressed point: 0x04 || X || Y.
  const std::size_t coord = k.bits_ / 8;
  k.material_.resize(1 + 2 * coord);
  k.material_[0] = 0x04;
  seed_rng.fill(std::span(k.material_).subspan(1));
  return k;
}

void PublicKey::encode(Writer& w) const {
  Writer alg;
  if (algorithm_ == KeyAlgorithm::kRsa) {
    alg.add_oid(rs::asn1::oids::rsa_encryption());
    alg.add_null();
  } else {
    alg.add_oid(rs::asn1::oids::ec_public_key());
    alg.add_oid(algorithm_ == KeyAlgorithm::kEcP256
                    ? rs::asn1::oids::curve_p256()
                    : rs::asn1::oids::curve_p384());
  }
  Writer spki;
  spki.add_sequence(alg);
  spki.add_bit_string(material_);
  w.add_sequence(spki);
}

Result<PublicKey> PublicKey::parse(Reader& r) {
  auto spki = r.read_sequence();
  if (!spki) return spki.propagate<PublicKey>();
  auto alg = spki.value().read_sequence();
  if (!alg) return alg.propagate<PublicKey>();
  auto alg_oid = alg.value().read_oid();
  if (!alg_oid) return alg_oid.propagate<PublicKey>();

  PublicKey k;
  if (alg_oid.value() == rs::asn1::oids::rsa_encryption()) {
    k.algorithm_ = KeyAlgorithm::kRsa;
    if (!alg.value().at_end()) {
      auto null = alg.value().read_null();
      if (!null) return null.propagate<PublicKey>();
    }
  } else if (alg_oid.value() == rs::asn1::oids::ec_public_key()) {
    auto curve = alg.value().read_oid();
    if (!curve) return curve.propagate<PublicKey>();
    if (curve.value() == rs::asn1::oids::curve_p256()) {
      k.algorithm_ = KeyAlgorithm::kEcP256;
      k.bits_ = 256;
    } else if (curve.value() == rs::asn1::oids::curve_p384()) {
      k.algorithm_ = KeyAlgorithm::kEcP384;
      k.bits_ = 384;
    } else {
      return Result<PublicKey>::err("unsupported EC curve " +
                                    curve.value().to_dotted());
    }
  } else {
    return Result<PublicKey>::err("unsupported key algorithm " +
                                  alg_oid.value().to_dotted());
  }

  auto bits = spki.value().read_bit_string();
  if (!bits) return bits.propagate<PublicKey>();
  if (bits.value().unused_bits != 0) {
    return Result<PublicKey>::err("SPKI BIT STRING must be octet-aligned");
  }
  k.material_ = std::move(bits.value().bytes);

  if (k.algorithm_ == KeyAlgorithm::kRsa) {
    // Recover the modulus size from the inner RSAPublicKey.
    Reader inner(k.material_);
    auto rsa_seq = inner.read_sequence();
    if (!rsa_seq) return rsa_seq.propagate<PublicKey>();
    auto modulus = rsa_seq.value().read_big_integer();
    if (!modulus) return modulus.propagate<PublicKey>();
    auto exponent = rsa_seq.value().read_big_integer();
    if (!exponent) return exponent.propagate<PublicKey>();
    std::span<const std::uint8_t> m = modulus.value();
    while (!m.empty() && m.front() == 0) m = m.subspan(1);  // sign octet
    if (m.empty()) return Result<PublicKey>::err("empty RSA modulus");
    unsigned top_bits = 0;
    for (std::uint8_t b = m.front(); b != 0; b >>= 1) ++top_bits;
    k.bits_ = static_cast<unsigned>((m.size() - 1) * 8) + top_bits;
  }
  return k;
}

}  // namespace rs::x509
