// X.509 v3 certificate model and DER parser (RFC 5280 §4.1).
//
// This is the study's unit of identity: every root-store entry is a parsed
// Certificate, identified by its SHA-256 fingerprint.  Parsing is strict
// DER and never throws; the original bytes are retained so fingerprints and
// re-serialization are exact.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/asn1/oid.h"
#include "src/asn1/time.h"
#include "src/crypto/digest.h"
#include "src/util/date.h"
#include "src/util/result.h"
#include "src/x509/extensions.h"
#include "src/x509/name.h"
#include "src/x509/public_key.h"

namespace rs::x509 {

/// Certificate validity window.
struct Validity {
  rs::asn1::Asn1Time not_before;
  rs::asn1::Asn1Time not_after;

  friend auto operator<=>(const Validity&, const Validity&) = default;
};

/// A parsed X.509 certificate plus its original DER.
class Certificate {
 public:
  /// Parses strict DER.  On success the returned certificate retains a copy
  /// of `der` and precomputed MD5/SHA-1/SHA-256 fingerprints.
  static rs::util::Result<Certificate> parse(std::span<const std::uint8_t> der);

  // --- identity -----------------------------------------------------------
  const std::vector<std::uint8_t>& der() const noexcept { return der_; }
  const rs::crypto::Sha256Digest& sha256() const noexcept { return sha256_; }
  const rs::crypto::Sha1Digest& sha1() const noexcept { return sha1_; }
  const rs::crypto::Md5Digest& md5() const noexcept { return md5_; }

  /// First 8 hex chars of the SHA-256 fingerprint — the short id style used
  /// in the paper's Table 6 ("beb00b30...").
  std::string short_id() const;

  // --- TBS fields ----------------------------------------------------------
  int version() const noexcept { return version_; }  // 1, 2, or 3
  const std::vector<std::uint8_t>& serial() const noexcept { return serial_; }
  const rs::asn1::Oid& signature_algorithm() const noexcept {
    return sig_alg_;
  }
  const Name& issuer() const noexcept { return issuer_; }
  const Name& subject() const noexcept { return subject_; }
  const Validity& validity() const noexcept { return validity_; }
  const PublicKey& public_key() const noexcept { return public_key_; }
  const std::vector<Extension>& extensions() const noexcept {
    return extensions_;
  }
  const std::vector<std::uint8_t>& signature() const noexcept {
    return signature_;
  }

  // --- derived predicates used by the analyses ----------------------------
  /// Issuer DN equals subject DN (all roots in the study are self-issued).
  bool is_self_issued() const;

  /// BasicConstraints CA bit (absent extension => false for v3; v1 certs
  /// are treated as CAs, matching legacy root handling).
  bool is_ca() const;

  /// True if the validity window has ended at `on`.
  bool is_expired_at(rs::util::Date on) const;
  /// True if the validity window has begun at `on`.
  bool is_valid_at(rs::util::Date on) const;

  /// Signature algorithm uses MD5 (Table 3 hygiene metric).
  bool has_md5_signature() const;
  /// RSA key with modulus < 2048 bits (Table 3 hygiene metric).
  bool has_weak_rsa_key() const;

  /// Extended Key Usage, if the extension is present.
  std::optional<ExtendedKeyUsage> extended_key_usage() const;

  /// CertificatePolicies, if the extension is present (EV recognition).
  std::optional<CertificatePolicies> certificate_policies() const;

  friend bool operator==(const Certificate& a, const Certificate& b) {
    return a.der_ == b.der_;
  }

 private:
  std::vector<std::uint8_t> der_;
  rs::crypto::Sha256Digest sha256_{};
  rs::crypto::Sha1Digest sha1_{};
  rs::crypto::Md5Digest md5_{};

  int version_ = 1;
  std::vector<std::uint8_t> serial_;
  rs::asn1::Oid sig_alg_;
  Name issuer_;
  Name subject_;
  Validity validity_;
  PublicKey public_key_;
  std::vector<Extension> extensions_;
  std::vector<std::uint8_t> signature_;
};

}  // namespace rs::x509
