#include "src/util/table.h"

#include <algorithm>
#include <cstdio>

namespace rs::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)), aligns_(header_.size(), Align::kLeft) {}

void TextTable::set_align(std::size_t idx, Align a) {
  if (idx < aligns_.size()) aligns_[idx] = a;
}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::add_separator() { separators_.push_back(rows_.size()); }

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  auto rule = [&] {
    std::string s;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      if (i != 0) s += "-+-";
      s.append(widths[i], '-');
    }
    s += '\n';
    return s;
  };
  auto emit_row = [&](const std::vector<std::string>& row) {
    std::string s;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      if (i != 0) s += " | ";
      const std::string& cell = i < row.size() ? row[i] : header_[i];
      const std::size_t pad = widths[i] - cell.size();
      if (aligns_[i] == Align::kRight) s.append(pad, ' ');
      s += cell;
      if (aligns_[i] == Align::kLeft) s.append(pad, ' ');
    }
    while (!s.empty() && s.back() == ' ') s.pop_back();
    s += '\n';
    return s;
  };

  std::string out = emit_row(header_);
  out += rule();
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (std::find(separators_.begin(), separators_.end(), r) !=
        separators_.end()) {
      out += rule();
    }
    out += emit_row(rows_[r]);
  }
  return out;
}

namespace {
std::string csv_cell(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

std::string TextTable::render_csv() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < header_.size(); ++i) {
      if (i != 0) out += ',';
      if (i < row.size()) out += csv_cell(row[i]);
    }
    out += '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out;
}

std::string fmt_double(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

std::string fmt_percent(double fraction) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
  return buf;
}

}  // namespace rs::util
