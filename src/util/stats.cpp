#include "src/util/stats.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace rs::util {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double mu = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - mu) * (x - mu);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double min_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (p <= 0.0) return sorted.front();
  if (p >= 100.0) return sorted.back();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double pearson(std::span<const double> xs, std::span<const double> ys) noexcept {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace rs::util
