// Hex codec for certificate fingerprints and DER dumps.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace rs::util {

/// Lowercase hex encoding of `bytes` ("deadbeef").
std::string hex_encode(std::span<const std::uint8_t> bytes);

/// Uppercase hex with ':' separators ("DE:AD:BE:EF") — the fingerprint
/// presentation used by most root-store tooling.
std::string hex_encode_colon(std::span<const std::uint8_t> bytes);

/// Decodes a hex string (case-insensitive, ':' and whitespace ignored).
/// Returns nullopt on odd digit counts or non-hex characters.
std::optional<std::vector<std::uint8_t>> hex_decode(std::string_view text);

}  // namespace rs::util
