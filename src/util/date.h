// Civil-calendar date arithmetic for root-store snapshot timelines.
//
// Root-store measurement reasons about dates at day granularity across a
// 1950..2050 window (X.509 UTCTime pivots at 2050).  A Date is a thin value
// type over a days-since-Unix-epoch count, with proleptic-Gregorian civil
// conversions (Howard Hinnant's algorithms) implemented from scratch.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace rs::util {

/// A civil (year, month, day) triple.  Month is 1..12, day 1..31.
struct CivilDate {
  int year = 1970;
  int month = 1;
  int day = 1;

  friend auto operator<=>(const CivilDate&, const CivilDate&) = default;
};

/// True if `year` is a leap year in the proleptic Gregorian calendar.
bool is_leap_year(int year) noexcept;

/// Number of days in `month` (1..12) of `year`.
int days_in_month(int year, int month) noexcept;

/// True if (year, month, day) names a real civil date.
bool is_valid_civil(const CivilDate& c) noexcept;

/// Calendar date as a count of days since 1970-01-01 (may be negative).
///
/// Supports ordering, day arithmetic, and conversion to/from civil triples
/// and ISO-8601 strings.  Default-constructed Date is the Unix epoch.
class Date {
 public:
  constexpr Date() = default;

  /// Wraps an explicit days-since-epoch count.
  static constexpr Date from_days(std::int64_t days) noexcept {
    Date d;
    d.days_ = days;
    return d;
  }

  /// Builds from a civil triple; invalid triples return nullopt.
  static std::optional<Date> from_civil(const CivilDate& c) noexcept;

  /// Convenience: from_civil({y, m, d}) that asserts validity.
  /// Intended for literals in tests and curated scenario data.
  static Date ymd(int year, int month, int day);

  /// Parses "YYYY-MM-DD"; returns nullopt on any deviation.
  static std::optional<Date> parse(std::string_view iso);

  constexpr std::int64_t days_since_epoch() const noexcept { return days_; }

  /// Civil triple for this date.
  CivilDate civil() const noexcept;

  int year() const noexcept { return civil().year; }
  int month() const noexcept { return civil().month; }
  int day() const noexcept { return civil().day; }

  /// ISO-8601 "YYYY-MM-DD".
  std::string to_string() const;

  /// Day-of-week, 0 = Sunday .. 6 = Saturday.
  int weekday() const noexcept;

  /// Adds (or subtracts) whole days.
  constexpr Date operator+(std::int64_t days) const noexcept {
    return from_days(days_ + days);
  }
  constexpr Date operator-(std::int64_t days) const noexcept {
    return from_days(days_ - days);
  }
  /// Whole days between two dates (this - other).
  constexpr std::int64_t operator-(const Date& other) const noexcept {
    return days_ - other.days_;
  }

  /// Adds `n` civil months, clamping the day to the target month's length
  /// (2021-01-31 + 1 month = 2021-02-28).  `n` may be negative.
  Date add_months(int n) const noexcept;

  friend constexpr auto operator<=>(const Date&, const Date&) = default;

 private:
  std::int64_t days_ = 0;
};

/// Fractional years between two dates (b - a), using 365.2425-day years.
double years_between(const Date& a, const Date& b) noexcept;

}  // namespace rs::util
