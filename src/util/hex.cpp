#include "src/util/hex.h"

#include <cctype>

namespace rs::util {

namespace {
constexpr char kLower[] = "0123456789abcdef";
constexpr char kUpper[] = "0123456789ABCDEF";

int nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string hex_encode(std::span<const std::uint8_t> bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out.push_back(kLower[b >> 4]);
    out.push_back(kLower[b & 0xF]);
  }
  return out;
}

std::string hex_encode_colon(std::span<const std::uint8_t> bytes) {
  std::string out;
  if (bytes.empty()) return out;
  out.reserve(bytes.size() * 3 - 1);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    if (i != 0) out.push_back(':');
    out.push_back(kUpper[bytes[i] >> 4]);
    out.push_back(kUpper[bytes[i] & 0xF]);
  }
  return out;
}

std::optional<std::vector<std::uint8_t>> hex_decode(std::string_view text) {
  std::vector<std::uint8_t> out;
  out.reserve(text.size() / 2);
  int hi = -1;
  for (char c : text) {
    if (c == ':' || std::isspace(static_cast<unsigned char>(c))) continue;
    const int n = nibble(c);
    if (n < 0) return std::nullopt;
    if (hi < 0) {
      hi = n;
    } else {
      out.push_back(static_cast<std::uint8_t>((hi << 4) | n));
      hi = -1;
    }
  }
  if (hi >= 0) return std::nullopt;  // dangling nibble
  return out;
}

}  // namespace rs::util
