#include "src/util/strings.h"

#include <algorithm>
#include <cctype>
#include <cstring>

namespace rs::util {

namespace {
bool is_space(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }
char lower(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}
}  // namespace

std::vector<std::string_view> split(std::string_view text, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string_view> split_lines(std::string_view text) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t pos = text.find('\n', start);
    std::size_t end = pos == std::string_view::npos ? text.size() : pos;
    if (end > start && text[end - 1] == '\r') --end;
    out.push_back(text.substr(start, end - start));
    if (pos == std::string_view::npos) break;
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

std::vector<std::string_view> split_ws(std::string_view text) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && is_space(text[i])) ++i;
    const std::size_t start = i;
    while (i < text.size() && !is_space(text[i])) ++i;
    if (i > start) out.push_back(text.substr(start, i - start));
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), lower);
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  return a.size() == b.size() &&
         std::equal(a.begin(), a.end(), b.begin(),
                    [](char x, char y) { return lower(x) == lower(y); });
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool icontains(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    if (iequals(haystack.substr(i, needle.size()), needle)) return true;
  }
  return false;
}

std::string errno_message(int errnum) {
  char buf[256];
#if defined(__GLIBC__) && defined(_GNU_SOURCE)
  // GNU strerror_r returns a char* that may point at a static immutable
  // string instead of filling buf.
  return strerror_r(errnum, buf, sizeof buf);
#else
  if (strerror_r(errnum, buf, sizeof buf) != 0) {
    return "errno " + std::to_string(errnum);
  }
  return buf;
#endif
}

}  // namespace rs::util
