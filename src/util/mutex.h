// Annotated synchronization primitives: the only mutex the tree may use.
//
// util::Mutex / util::MutexLock / util::CondVar wrap the std primitives
// with the thread-safety attributes from thread_annotations.h, so clang's
// -Wthread-safety can prove at compile time that every RS_GUARDED_BY field
// is only touched under its lock (see docs/STATIC_ANALYSIS.md).  Naked
// std::mutex / std::lock_guard / std::condition_variable elsewhere in src/
// or tools/ fail the structural lint (tools/check_concurrency.sh): an
// unannotated mutex is invisible to the analysis, which silently un-proves
// everything it guards.
//
// CondVar deliberately has no predicate-taking wait: the idiomatic form is
//
//     util::MutexLock lock(mutex_);
//     while (!condition) cv_.wait(mutex_);
//
// so the condition's guarded reads sit directly in the locked scope where
// the analysis can see them (a predicate lambda would be analyzed as a
// separate unannotated function and rejected).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "src/util/thread_annotations.h"

namespace rs::util {

class CondVar;

/// An exclusive lock (std::mutex) the thread-safety analysis understands.
/// Prefer MutexLock over manual lock()/unlock() pairs.
class RS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() RS_ACQUIRE() { impl_.lock(); }
  void unlock() RS_RELEASE() { impl_.unlock(); }
  bool try_lock() RS_TRY_ACQUIRE(true) { return impl_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex impl_;
};

/// RAII scope lock over a Mutex (the annotated std::lock_guard).
class RS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) RS_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() RS_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable for use with Mutex.  wait() takes the Mutex itself
/// (which the caller must hold, typically via MutexLock) so call sites keep
/// their guarded-condition loops inside the analyzed locked scope.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mutex`, blocks until notified, and reacquires it
  /// before returning.  Spurious wakeups happen: always wait in a loop.
  void wait(Mutex& mutex) RS_REQUIRES(mutex) {
    // Adopt the already-held lock for the std wait protocol, then release
    // the unique_lock wrapper without unlocking — ownership stays with the
    // caller's MutexLock exactly as the annotations claim.
    std::unique_lock<std::mutex> adopted(mutex.impl_, std::adopt_lock);
    cv_.wait(adopted);
    adopted.release();
  }

  /// wait() with a timeout.  Returns false when the timeout elapsed first.
  /// Like wait(), spurious wakeups happen: re-check the guarded condition
  /// (and the remaining budget) in the caller's while-loop.
  template <typename Rep, typename Period>
  bool wait_for(Mutex& mutex,
                std::chrono::duration<Rep, Period> timeout) RS_REQUIRES(mutex) {
    std::unique_lock<std::mutex> adopted(mutex.impl_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(adopted, timeout);
    adopted.release();
    return status == std::cv_status::no_timeout;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace rs::util
