// Lightweight expected-style result for parse paths.
//
// The format parsers never throw on malformed input (Core Guidelines E.x:
// exceptions are for programming errors, not data errors); they return
// Result<T> carrying either a value or a human-readable diagnostic.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace rs::util {

/// Either a T or an error message.  Inspect with ok() before value().
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from a value, so `return parsed;` works.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-*)

  /// Named error constructor: Result<X>::err("why").
  static Result err(std::string message) {
    return Result(Error{std::move(message)});
  }

  bool ok() const noexcept { return std::holds_alternative<T>(data_); }
  explicit operator bool() const noexcept { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& take() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  const std::string& error() const {
    assert(!ok());
    return std::get<Error>(data_).message;
  }

  /// Propagates this error into a Result of another type.
  template <typename U>
  Result<U> propagate() const {
    return Result<U>::err(error());
  }

 private:
  struct Error {
    std::string message;
  };
  explicit Result(Error e) : data_(std::move(e)) {}
  std::variant<T, Error> data_;
};

}  // namespace rs::util
