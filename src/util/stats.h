// Minimal descriptive statistics used by the analysis layer.
#pragma once

#include <cstddef>
#include <span>

namespace rs::util {

double mean(std::span<const double> xs) noexcept;

/// Population standard deviation (sqrt of E[(x-mu)^2]); 0 for n < 2.
double stddev(std::span<const double> xs) noexcept;

/// Median via copy-and-nth_element; 0 for empty input.
double median(std::span<const double> xs);

double min_of(std::span<const double> xs) noexcept;
double max_of(std::span<const double> xs) noexcept;

/// Linear-interpolated percentile, p in [0, 100]; 0 for empty input.
double percentile(std::span<const double> xs, double p);

/// Pearson correlation of two equal-length series; 0 if degenerate.
double pearson(std::span<const double> xs, std::span<const double> ys) noexcept;

}  // namespace rs::util
