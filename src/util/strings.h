// Small string helpers shared by the format parsers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rs::util {

/// Splits on a single-character delimiter.  Adjacent delimiters yield empty
/// fields; an empty input yields one empty field.
std::vector<std::string_view> split(std::string_view text, char delim);

/// Splits into lines, accepting "\n" and "\r\n" terminators.  A trailing
/// newline does not produce a final empty line.
std::vector<std::string_view> split_lines(std::string_view text);

/// Strips ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// Tokenizes on runs of ASCII whitespace; never yields empty tokens.
std::vector<std::string_view> split_ws(std::string_view text);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// ASCII lowercase copy.
std::string to_lower(std::string_view s);

/// Case-insensitive ASCII comparison.
bool iequals(std::string_view a, std::string_view b);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `needle` occurs in `haystack` ignoring ASCII case.
bool icontains(std::string_view haystack, std::string_view needle);

/// Thread-safe strerror: the glibc strerror() writes into a shared static
/// buffer (clang-tidy concurrency-mt-unsafe), so concurrent code must use
/// this strerror_r-backed variant instead.
std::string errno_message(int errnum);

}  // namespace rs::util
