// Plain-text table rendering for the benchmark harnesses.
//
// Every bench binary prints the paper's table/figure as an aligned text table
// (and optionally CSV), so table formatting lives in one place.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rs::util {

/// Column alignment for TextTable.
enum class Align { kLeft, kRight };

/// An aligned monospace table with a header row.
///
/// Usage:
///   TextTable t({"Root store", "Avg. Size"});
///   t.add_row({"NSS", "121.8"});
///   std::cout << t.render();
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Sets the alignment of column `idx` (default left).
  void set_align(std::size_t idx, Align a);

  /// Appends a data row; missing cells render empty, extra cells are dropped.
  void add_row(std::vector<std::string> cells);

  /// Inserts a horizontal separator before the next added row.
  void add_separator();

  /// Renders with ASCII separators and 2-space padding.
  std::string render() const;

  /// Renders as RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  std::string render_csv() const;

  std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::size_t> separators_;  // row indices preceded by a rule
};

/// Formats a double with `prec` decimals (fixed).
std::string fmt_double(double v, int prec);

/// Formats a percentage with one decimal ("77.0%").
std::string fmt_percent(double fraction);

}  // namespace rs::util
