#include "src/util/date.h"

#include <array>
#include <cassert>
#include <charconv>
#include <cstdio>

namespace rs::util {

bool is_leap_year(int year) noexcept {
  return year % 4 == 0 && (year % 100 != 0 || year % 400 == 0);
}

int days_in_month(int year, int month) noexcept {
  static constexpr std::array<int, 12> kDays = {31, 28, 31, 30, 31, 30,
                                                31, 31, 30, 31, 30, 31};
  if (month < 1 || month > 12) return 0;
  if (month == 2 && is_leap_year(year)) return 29;
  return kDays[static_cast<std::size_t>(month - 1)];
}

bool is_valid_civil(const CivilDate& c) noexcept {
  return c.month >= 1 && c.month <= 12 && c.day >= 1 &&
         c.day <= days_in_month(c.year, c.month);
}

namespace {

// days_from_civil / civil_from_days per Howard Hinnant's public-domain
// chrono-compatible algorithms.
std::int64_t days_from_civil(int y, int m, int d) noexcept {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);             // [0, 399]
  const unsigned doy =
      static_cast<unsigned>((153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1);  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;            // [0, 146096]
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

CivilDate civil_from_days(std::int64_t z) noexcept {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);          // [0, 146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;             // [0, 399]
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);          // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                               // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;                       // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                            // [1, 12]
  return CivilDate{static_cast<int>(y + (m <= 2)), static_cast<int>(m),
                   static_cast<int>(d)};
}

}  // namespace

std::optional<Date> Date::from_civil(const CivilDate& c) noexcept {
  if (!is_valid_civil(c)) return std::nullopt;
  return from_days(days_from_civil(c.year, c.month, c.day));
}

Date Date::ymd(int year, int month, int day) {
  auto d = from_civil(CivilDate{year, month, day});
  assert(d.has_value() && "Date::ymd called with an invalid civil date");
  return *d;
}

std::optional<Date> Date::parse(std::string_view iso) {
  // Exactly "YYYY-MM-DD": 4-2-2 digits with '-' separators.
  if (iso.size() != 10 || iso[4] != '-' || iso[7] != '-') return std::nullopt;
  auto parse_int = [](std::string_view s, int& out) {
    const auto* first = s.data();
    const auto* last = s.data() + s.size();
    auto [ptr, ec] = std::from_chars(first, last, out);
    return ec == std::errc{} && ptr == last;
  };
  int y = 0, m = 0, d = 0;
  if (!parse_int(iso.substr(0, 4), y) || !parse_int(iso.substr(5, 2), m) ||
      !parse_int(iso.substr(8, 2), d)) {
    return std::nullopt;
  }
  return from_civil(CivilDate{y, m, d});
}

CivilDate Date::civil() const noexcept { return civil_from_days(days_); }

std::string Date::to_string() const {
  const CivilDate c = civil();
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", c.year, c.month, c.day);
  return buf;
}

int Date::weekday() const noexcept {
  // 1970-01-01 was a Thursday (4).
  std::int64_t w = (days_ + 4) % 7;
  if (w < 0) w += 7;
  return static_cast<int>(w);
}

Date Date::add_months(int n) const noexcept {
  CivilDate c = civil();
  const int total = c.year * 12 + (c.month - 1) + n;
  int y = total / 12;
  int m = total % 12;
  if (m < 0) {
    m += 12;
    --y;
  }
  ++m;
  const int dim = days_in_month(y, m);
  const int d = c.day > dim ? dim : c.day;
  return *from_civil(CivilDate{y, m, d});
}

double years_between(const Date& a, const Date& b) noexcept {
  return static_cast<double>(b - a) / 365.2425;
}

}  // namespace rs::util
