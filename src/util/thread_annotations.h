// Clang Thread Safety Analysis attribute macros (RS_ prefix).
//
// These macros let the compiler *prove* lock discipline at build time: a
// field declared RS_GUARDED_BY(mutex_) can only be touched while mutex_ is
// held, a function declared RS_REQUIRES(mutex_) can only be called with it
// held, and violations are -Wthread-safety errors under clang — no test
// schedule required.  Under gcc (which has no such analysis) every macro
// expands to nothing, so the annotations are zero-cost documentation there;
// cmake/Hardening.cmake adds -Wthread-safety only for clang builds.
//
// Vocabulary (see docs/STATIC_ANALYSIS.md for the full guide):
//   RS_CAPABILITY(x)        class is a lockable capability (util::Mutex)
//   RS_SCOPED_CAPABILITY    RAII class that acquires/releases (MutexLock)
//   RS_GUARDED_BY(mu)       data member readable/writable only under `mu`
//   RS_PT_GUARDED_BY(mu)    pointee (not the pointer) guarded by `mu`
//   RS_REQUIRES(mu)         caller must hold `mu` (exclusive)
//   RS_REQUIRES_SHARED(mu)  caller must hold `mu` at least shared
//   RS_ACQUIRE(mu)          function acquires `mu` and does not release it
//   RS_RELEASE(mu)          function releases `mu`
//   RS_TRY_ACQUIRE(b, mu)   acquires `mu` iff the return value equals `b`
//   RS_EXCLUDES(mu)         caller must NOT hold `mu` (deadlock guard)
//   RS_ACQUIRED_BEFORE/AFTER declare a global lock ordering
//   RS_ASSERT_CAPABILITY(mu) runtime assertion that `mu` is held
//   RS_RETURN_CAPABILITY(mu) accessor returns a reference to `mu`
//   RS_NO_THREAD_SAFETY_ANALYSIS  opt a function out of the analysis.
//       Every use MUST carry a `// safety:` comment justifying why the
//       analysis cannot see the invariant (enforced by
//       tools/check_concurrency.sh).
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define RS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define RS_THREAD_ANNOTATION(x)  // no-op: gcc has no thread-safety analysis
#endif

#define RS_CAPABILITY(x) RS_THREAD_ANNOTATION(capability(x))
#define RS_SCOPED_CAPABILITY RS_THREAD_ANNOTATION(scoped_lockable)
#define RS_GUARDED_BY(x) RS_THREAD_ANNOTATION(guarded_by(x))
#define RS_PT_GUARDED_BY(x) RS_THREAD_ANNOTATION(pt_guarded_by(x))
#define RS_ACQUIRED_BEFORE(...) \
  RS_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define RS_ACQUIRED_AFTER(...) \
  RS_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define RS_REQUIRES(...) \
  RS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define RS_REQUIRES_SHARED(...) \
  RS_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define RS_ACQUIRE(...) RS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RS_ACQUIRE_SHARED(...) \
  RS_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RS_RELEASE(...) RS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RS_RELEASE_SHARED(...) \
  RS_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define RS_TRY_ACQUIRE(...) \
  RS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define RS_TRY_ACQUIRE_SHARED(...) \
  RS_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))
#define RS_EXCLUDES(...) RS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define RS_ASSERT_CAPABILITY(x) RS_THREAD_ANNOTATION(assert_capability(x))
#define RS_ASSERT_SHARED_CAPABILITY(x) \
  RS_THREAD_ANNOTATION(assert_shared_capability(x))
#define RS_RETURN_CAPABILITY(x) RS_THREAD_ANNOTATION(lock_returned(x))
#define RS_NO_THREAD_SAFETY_ANALYSIS \
  RS_THREAD_ANNOTATION(no_thread_safety_analysis)
