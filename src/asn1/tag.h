// ASN.1 identifier-octet vocabulary (X.690).
#pragma once

#include <cstdint>

namespace rs::asn1 {

/// Tag class bits (high two bits of the identifier octet).
enum class TagClass : std::uint8_t {
  kUniversal = 0x00,
  kApplication = 0x40,
  kContextSpecific = 0x80,
  kPrivate = 0xC0,
};

/// The constructed bit.
inline constexpr std::uint8_t kConstructed = 0x20;

/// Universal tag numbers used by X.509 and the root-store formats.
enum class UniversalTag : std::uint8_t {
  kBoolean = 0x01,
  kInteger = 0x02,
  kBitString = 0x03,
  kOctetString = 0x04,
  kNull = 0x05,
  kOid = 0x06,
  kUtf8String = 0x0C,
  kSequence = 0x10,
  kSet = 0x11,
  kPrintableString = 0x13,
  kT61String = 0x14,
  kIa5String = 0x16,
  kUtcTime = 0x17,
  kGeneralizedTime = 0x18,
};

/// Full identifier octet for a primitive universal tag.
constexpr std::uint8_t primitive(UniversalTag t) noexcept {
  return static_cast<std::uint8_t>(t);
}

/// Full identifier octet for a constructed universal tag (SEQUENCE/SET).
constexpr std::uint8_t constructed(UniversalTag t) noexcept {
  return static_cast<std::uint8_t>(static_cast<std::uint8_t>(t) | kConstructed);
}

/// Context-specific tag [n], constructed (the common X.509 EXPLICIT form).
constexpr std::uint8_t context(std::uint8_t n) noexcept {
  return static_cast<std::uint8_t>(
      static_cast<std::uint8_t>(TagClass::kContextSpecific) | kConstructed | n);
}

/// Context-specific tag [n], primitive (IMPLICIT-tagged primitives).
constexpr std::uint8_t context_primitive(std::uint8_t n) noexcept {
  return static_cast<std::uint8_t>(
      static_cast<std::uint8_t>(TagClass::kContextSpecific) | n);
}

}  // namespace rs::asn1
