// X.509 time encoding: UTCTime and GeneralizedTime (RFC 5280 §4.1.2.5).
//
// RFC 5280 requires UTCTime ("YYMMDDHHMMSSZ", pivot 1950/2050) for dates
// before 2050 and GeneralizedTime ("YYYYMMDDHHMMSSZ") from 2050 on.  The
// measurement pipeline only needs day resolution, but parsing keeps the
// time-of-day so round-trips are exact.
#pragma once

#include <cstdint>
#include <span>

#include "src/asn1/reader.h"
#include "src/asn1/writer.h"
#include "src/util/date.h"
#include "src/util/result.h"

namespace rs::asn1 {

/// A parsed X.509 time: civil date plus seconds-of-day, always UTC ("Z").
struct Asn1Time {
  rs::util::Date date;
  std::uint32_t seconds_of_day = 0;  // 0..86399

  friend auto operator<=>(const Asn1Time&, const Asn1Time&) = default;
};

/// Reads a UTCTime or GeneralizedTime element from `r`, enforcing RFC 5280
/// shape (Z suffix, seconds present, correct digit counts) and the
/// UTCTime 2050 pivot.
rs::util::Result<Asn1Time> read_time(Reader& r);

/// Appends `t` to `w`, choosing UTCTime before 2050 and GeneralizedTime
/// from 2050 on, per RFC 5280.
void write_time(Writer& w, const Asn1Time& t);

/// Convenience for day-resolution timestamps (midnight UTC).
inline Asn1Time at_midnight(rs::util::Date d) { return Asn1Time{d, 0}; }

}  // namespace rs::asn1
