// Strict DER reader (X.690).
//
// A Reader is a non-owning cursor over a byte span.  It decodes one TLV at a
// time with DER's canonical restrictions enforced: definite lengths only,
// minimal length encodings, minimal INTEGERs, and valid tag structure.
// Errors are reported as Result diagnostics carrying the byte offset, so a
// malformed root-store blob names the exact failure point.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/asn1/oid.h"
#include "src/asn1/tag.h"
#include "src/util/result.h"

namespace rs::asn1 {

/// One decoded TLV element.  `content` aliases the reader's input buffer.
struct Element {
  std::uint8_t tag = 0;                      // full identifier octet
  std::span<const std::uint8_t> content;     // content octets (value)
  std::span<const std::uint8_t> full;        // tag + length + content
};

/// Sequential DER decoder over a borrowed buffer.
///
/// The underlying bytes must outlive the Reader and any Element it returns.
///
/// Sub-readers returned by read_sequence()/read_set()/read_context() carry a
/// nesting depth one greater than their parent; descending past kMaxDepth
/// yields an error.  This bounds the recursion of any decoder walking nested
/// structures, so hostile DER (e.g. thousands of nested SEQUENCEs) returns a
/// diagnostic instead of exhausting the stack.
class Reader {
 public:
  /// Deepest constructed nesting a decoder may descend into.  Real-world
  /// X.509 stays in single digits; 64 leaves generous headroom while keeping
  /// worst-case recursion far below any sane stack limit.
  static constexpr std::size_t kMaxDepth = 64;

  explicit Reader(std::span<const std::uint8_t> data, std::size_t base_offset = 0)
      : data_(data), base_(base_offset) {}

  bool at_end() const noexcept { return pos_ >= data_.size(); }
  std::size_t remaining() const noexcept { return data_.size() - pos_; }

  /// Absolute offset of the cursor within the original top-level buffer.
  std::size_t offset() const noexcept { return base_ + pos_; }

  /// Constructed-nesting depth of this reader (0 at top level).
  std::size_t depth() const noexcept { return depth_; }

  /// Peeks at the next identifier octet without consuming (error at end).
  rs::util::Result<std::uint8_t> peek_tag() const;

  /// Reads the next TLV of any tag.
  rs::util::Result<Element> read_any();

  /// Reads the next TLV and requires its identifier octet to equal `tag`.
  rs::util::Result<Element> read(std::uint8_t tag);

  /// True if the next element exists and has identifier octet `tag`
  /// (used for OPTIONAL fields).
  bool next_is(std::uint8_t tag) const noexcept;

  /// Reads a SEQUENCE and returns a sub-reader over its content.
  rs::util::Result<Reader> read_sequence();

  /// Reads a SET and returns a sub-reader over its content.
  rs::util::Result<Reader> read_set();

  /// Reads a constructed context-specific [n] and returns a sub-reader.
  rs::util::Result<Reader> read_context(std::uint8_t n);

  /// BOOLEAN; DER requires content 0x00 or 0xFF.
  rs::util::Result<bool> read_boolean();

  /// INTEGER that must fit in int64 (minimal encoding enforced).
  rs::util::Result<std::int64_t> read_small_integer();

  /// INTEGER of any width, returned as its content octets (two's complement,
  /// minimal); used for serial numbers and RSA moduli.
  rs::util::Result<std::vector<std::uint8_t>> read_big_integer();

  /// OBJECT IDENTIFIER.
  rs::util::Result<Oid> read_oid();

  /// OCTET STRING content bytes.
  rs::util::Result<std::vector<std::uint8_t>> read_octet_string();

  /// BIT STRING; requires unused-bits octet 0..7 and returns the payload
  /// bytes plus the unused-bit count.
  struct BitString {
    std::vector<std::uint8_t> bytes;
    std::uint8_t unused_bits = 0;
  };
  rs::util::Result<BitString> read_bit_string();

  /// Any of UTF8String / PrintableString / IA5String / T61String, returned
  /// as raw text (no character-set validation beyond PrintableString's set).
  rs::util::Result<std::string> read_string();

  /// NULL (content must be empty).
  rs::util::Result<std::monostate> read_null();

 private:
  Reader(std::span<const std::uint8_t> data, std::size_t base_offset,
         std::size_t depth)
      : data_(data), base_(base_offset), depth_(depth) {}

  rs::util::Result<Element> read_tlv();
  rs::util::Result<Reader> descend(std::uint8_t tag);
  std::string errmsg(const std::string& what) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  std::size_t base_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace rs::asn1
