// ASN.1 OBJECT IDENTIFIER value type.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace rs::asn1 {

/// An OBJECT IDENTIFIER as a sequence of arcs.
///
/// Construct from dotted text ("1.2.840.113549.1.1.11") or from DER content
/// octets; encodes back to either form.  Comparable/hashable so OIDs can key
/// maps of signature algorithms and EKU purposes.
class Oid {
 public:
  Oid() = default;
  explicit Oid(std::vector<std::uint32_t> arcs) : arcs_(std::move(arcs)) {}

  /// Parses dotted-decimal text; nullopt unless >= 2 arcs, first arc 0..2,
  /// second arc < 40 when first < 2 (X.660 constraints).
  static std::optional<Oid> from_dotted(std::string_view text);

  /// Decodes DER content octets (base-128 arcs); nullopt on truncation,
  /// empty input, or non-minimal leading 0x80 octets.
  static std::optional<Oid> from_der_content(std::span<const std::uint8_t> der);

  /// DER content octets (no tag/length).
  std::vector<std::uint8_t> to_der_content() const;

  /// Dotted-decimal text.
  std::string to_dotted() const;

  const std::vector<std::uint32_t>& arcs() const noexcept { return arcs_; }
  bool empty() const noexcept { return arcs_.empty(); }

  friend auto operator<=>(const Oid&, const Oid&) = default;

 private:
  std::vector<std::uint32_t> arcs_;
};

/// Well-known OIDs used across x509/formats.  Functions (not globals) to
/// avoid static-initialization-order concerns (Core Guidelines I.22).
namespace oids {
// Signature algorithms.
Oid md5_with_rsa();        // 1.2.840.113549.1.1.4
Oid sha1_with_rsa();       // 1.2.840.113549.1.1.5
Oid sha256_with_rsa();     // 1.2.840.113549.1.1.11
Oid sha384_with_rsa();     // 1.2.840.113549.1.1.12
Oid ecdsa_with_sha256();   // 1.2.840.10045.4.3.2
Oid ecdsa_with_sha384();   // 1.2.840.10045.4.3.3

// Public key algorithms.
Oid rsa_encryption();      // 1.2.840.113549.1.1.1
Oid ec_public_key();       // 1.2.840.10045.2.1
Oid curve_p256();          // 1.2.840.10045.3.1.7
Oid curve_p384();          // 1.3.132.0.34

// Name attribute types.
Oid common_name();         // 2.5.4.3
Oid country();             // 2.5.4.6
Oid organization();        // 2.5.4.10
Oid organizational_unit(); // 2.5.4.11

// Extensions.
Oid basic_constraints();   // 2.5.29.19
Oid key_usage();           // 2.5.29.15
Oid ext_key_usage();       // 2.5.29.37
Oid subject_key_id();      // 2.5.29.14
Oid authority_key_id();    // 2.5.29.35
Oid certificate_policies();// 2.5.29.32

// Extended key usage purposes.
Oid eku_server_auth();     // 1.3.6.1.5.5.7.3.1
Oid eku_client_auth();     // 1.3.6.1.5.5.7.3.2
Oid eku_code_signing();    // 1.3.6.1.5.5.7.3.3
Oid eku_email_protection();// 1.3.6.1.5.5.7.3.4
Oid eku_time_stamping();   // 1.3.6.1.5.5.7.3.8
Oid eku_any();             // 2.5.29.37.0
}  // namespace oids

}  // namespace rs::asn1
