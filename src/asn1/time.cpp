#include "src/asn1/time.h"

#include <cstdio>

namespace rs::asn1 {

using rs::util::Date;
using rs::util::Result;

namespace {

bool parse_digits(std::span<const std::uint8_t> s, std::size_t pos,
                  std::size_t count, int& out) {
  int v = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint8_t c = s[pos + i];
    if (c < '0' || c > '9') return false;
    v = v * 10 + (c - '0');
  }
  out = v;
  return true;
}

Result<Asn1Time> parse_time_content(std::span<const std::uint8_t> c,
                                    bool generalized) {
  const std::size_t expected = generalized ? 15 : 13;  // incl. trailing 'Z'
  if (c.size() != expected || c.back() != 'Z') {
    return Result<Asn1Time>::err("time must be fixed-length with Z suffix");
  }
  std::size_t pos = 0;
  int year = 0;
  if (generalized) {
    if (!parse_digits(c, pos, 4, year)) {
      return Result<Asn1Time>::err("bad year digits");
    }
    pos += 4;
  } else {
    int yy = 0;
    if (!parse_digits(c, pos, 2, yy)) {
      return Result<Asn1Time>::err("bad year digits");
    }
    pos += 2;
    year = yy >= 50 ? 1900 + yy : 2000 + yy;  // RFC 5280 pivot
  }
  int month = 0, day = 0, hh = 0, mm = 0, ss = 0;
  if (!parse_digits(c, pos, 2, month) || !parse_digits(c, pos + 2, 2, day) ||
      !parse_digits(c, pos + 4, 2, hh) || !parse_digits(c, pos + 6, 2, mm) ||
      !parse_digits(c, pos + 8, 2, ss)) {
    return Result<Asn1Time>::err("bad time digits");
  }
  if (hh > 23 || mm > 59 || ss > 59) {
    return Result<Asn1Time>::err("time of day out of range");
  }
  const auto date = Date::from_civil({year, month, day});
  if (!date) return Result<Asn1Time>::err("invalid calendar date");
  if (generalized && year < 2050) {
    return Result<Asn1Time>::err(
        "GeneralizedTime before 2050 forbidden by RFC 5280");
  }
  return Asn1Time{*date,
                  static_cast<std::uint32_t>(hh * 3600 + mm * 60 + ss)};
}

}  // namespace

Result<Asn1Time> read_time(Reader& r) {
  auto tag = r.peek_tag();
  if (!tag) return tag.propagate<Asn1Time>();
  if (tag.value() == primitive(UniversalTag::kUtcTime)) {
    auto el = r.read(tag.value());
    if (!el) return el.propagate<Asn1Time>();
    return parse_time_content(el.value().content, /*generalized=*/false);
  }
  if (tag.value() == primitive(UniversalTag::kGeneralizedTime)) {
    auto el = r.read(tag.value());
    if (!el) return el.propagate<Asn1Time>();
    return parse_time_content(el.value().content, /*generalized=*/true);
  }
  return Result<Asn1Time>::err("expected UTCTime or GeneralizedTime");
}

void write_time(Writer& w, const Asn1Time& t) {
  const rs::util::CivilDate c = t.date.civil();
  const int hh = static_cast<int>(t.seconds_of_day / 3600);
  const int mm = static_cast<int>(t.seconds_of_day / 60 % 60);
  const int ss = static_cast<int>(t.seconds_of_day % 60);
  char buf[48];
  if (c.year >= 2050) {
    std::snprintf(buf, sizeof(buf), "%04d%02d%02d%02d%02d%02dZ", c.year,
                  c.month, c.day, hh, mm, ss);
    w.add_tlv(primitive(UniversalTag::kGeneralizedTime),
              {reinterpret_cast<const std::uint8_t*>(buf), 15});
  } else {
    std::snprintf(buf, sizeof(buf), "%02d%02d%02d%02d%02d%02dZ", c.year % 100,
                  c.month, c.day, hh, mm, ss);
    w.add_tlv(primitive(UniversalTag::kUtcTime),
              {reinterpret_cast<const std::uint8_t*>(buf), 13});
  }
}

}  // namespace rs::asn1
