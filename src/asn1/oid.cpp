#include "src/asn1/oid.h"

#include <charconv>

namespace rs::asn1 {

std::optional<Oid> Oid::from_dotted(std::string_view text) {
  std::vector<std::uint32_t> arcs;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t dot = text.find('.', start);
    const std::string_view part =
        text.substr(start, dot == std::string_view::npos ? std::string_view::npos
                                                         : dot - start);
    if (part.empty()) return std::nullopt;
    std::uint32_t arc = 0;
    const auto* first = part.data();
    const auto* last = part.data() + part.size();
    auto [ptr, ec] = std::from_chars(first, last, arc);
    if (ec != std::errc{} || ptr != last) return std::nullopt;
    arcs.push_back(arc);
    if (dot == std::string_view::npos) break;
    start = dot + 1;
  }
  if (arcs.size() < 2) return std::nullopt;
  if (arcs[0] > 2) return std::nullopt;
  if (arcs[0] < 2 && arcs[1] >= 40) return std::nullopt;
  return Oid(std::move(arcs));
}

std::optional<Oid> Oid::from_der_content(std::span<const std::uint8_t> der) {
  if (der.empty()) return std::nullopt;
  std::vector<std::uint32_t> arcs;
  std::size_t i = 0;
  bool first_subid = true;
  while (i < der.size()) {
    std::uint64_t v = 0;
    if (der[i] == 0x80) return std::nullopt;  // non-minimal base-128
    bool done = false;
    while (i < der.size()) {
      const std::uint8_t b = der[i++];
      if (v > (UINT64_MAX >> 7)) return std::nullopt;  // overflow
      v = (v << 7) | (b & 0x7F);
      if ((b & 0x80) == 0) {
        done = true;
        break;
      }
    }
    if (!done) return std::nullopt;  // truncated arc
    if (v > UINT32_MAX && !(first_subid && v <= 2ull * 40 + UINT32_MAX)) {
      return std::nullopt;
    }
    if (first_subid) {
      // First subidentifier packs arcs 0 and 1: 40 * arc0 + arc1.
      const std::uint32_t arc0 = v >= 80 ? 2u : static_cast<std::uint32_t>(v / 40);
      const std::uint32_t arc1 = static_cast<std::uint32_t>(v - 40ull * arc0);
      arcs.push_back(arc0);
      arcs.push_back(arc1);
      first_subid = false;
    } else {
      arcs.push_back(static_cast<std::uint32_t>(v));
    }
  }
  return Oid(std::move(arcs));
}

std::vector<std::uint8_t> Oid::to_der_content() const {
  std::vector<std::uint8_t> out;
  if (arcs_.size() < 2) return out;
  auto emit = [&out](std::uint64_t v) {
    std::uint8_t tmp[10];
    int n = 0;
    do {
      tmp[n++] = static_cast<std::uint8_t>(v & 0x7F);
      v >>= 7;
    } while (v != 0);
    for (int i = n - 1; i >= 0; --i) {
      out.push_back(static_cast<std::uint8_t>(tmp[i] | (i != 0 ? 0x80 : 0x00)));
    }
  };
  emit(static_cast<std::uint64_t>(arcs_[0]) * 40 + arcs_[1]);
  for (std::size_t i = 2; i < arcs_.size(); ++i) emit(arcs_[i]);
  return out;
}

std::string Oid::to_dotted() const {
  std::string out;
  for (std::size_t i = 0; i < arcs_.size(); ++i) {
    if (i != 0) out += '.';
    out += std::to_string(arcs_[i]);
  }
  return out;
}

namespace oids {
namespace {
Oid make(std::string_view dotted) { return *Oid::from_dotted(dotted); }
}  // namespace

Oid md5_with_rsa() { return make("1.2.840.113549.1.1.4"); }
Oid sha1_with_rsa() { return make("1.2.840.113549.1.1.5"); }
Oid sha256_with_rsa() { return make("1.2.840.113549.1.1.11"); }
Oid sha384_with_rsa() { return make("1.2.840.113549.1.1.12"); }
Oid ecdsa_with_sha256() { return make("1.2.840.10045.4.3.2"); }
Oid ecdsa_with_sha384() { return make("1.2.840.10045.4.3.3"); }

Oid rsa_encryption() { return make("1.2.840.113549.1.1.1"); }
Oid ec_public_key() { return make("1.2.840.10045.2.1"); }
Oid curve_p256() { return make("1.2.840.10045.3.1.7"); }
Oid curve_p384() { return make("1.3.132.0.34"); }

Oid common_name() { return make("2.5.4.3"); }
Oid country() { return make("2.5.4.6"); }
Oid organization() { return make("2.5.4.10"); }
Oid organizational_unit() { return make("2.5.4.11"); }

Oid basic_constraints() { return make("2.5.29.19"); }
Oid key_usage() { return make("2.5.29.15"); }
Oid ext_key_usage() { return make("2.5.29.37"); }
Oid subject_key_id() { return make("2.5.29.14"); }
Oid authority_key_id() { return make("2.5.29.35"); }
Oid certificate_policies() { return make("2.5.29.32"); }

Oid eku_server_auth() { return make("1.3.6.1.5.5.7.3.1"); }
Oid eku_client_auth() { return make("1.3.6.1.5.5.7.3.2"); }
Oid eku_code_signing() { return make("1.3.6.1.5.5.7.3.3"); }
Oid eku_email_protection() { return make("1.3.6.1.5.5.7.3.4"); }
Oid eku_time_stamping() { return make("1.3.6.1.5.5.7.3.8"); }
Oid eku_any() { return make("2.5.29.37.0"); }
}  // namespace oids

}  // namespace rs::asn1
