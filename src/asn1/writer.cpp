#include "src/asn1/writer.h"

namespace rs::asn1 {

void Writer::add_length(std::size_t len) {
  if (len < 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(len));
    return;
  }
  std::uint8_t tmp[sizeof(std::size_t)];
  int n = 0;
  while (len != 0) {
    tmp[n++] = static_cast<std::uint8_t>(len & 0xFF);
    len >>= 8;
  }
  buf_.push_back(static_cast<std::uint8_t>(0x80 | n));
  for (int i = n - 1; i >= 0; --i) buf_.push_back(tmp[i]);
}

void Writer::add_tlv(std::uint8_t tag, std::span<const std::uint8_t> content) {
  buf_.push_back(tag);
  add_length(content.size());
  buf_.insert(buf_.end(), content.begin(), content.end());
}

void Writer::add_raw(std::span<const std::uint8_t> der) {
  buf_.insert(buf_.end(), der.begin(), der.end());
}

void Writer::add_boolean(bool v) {
  const std::uint8_t b = v ? 0xFF : 0x00;
  add_tlv(primitive(UniversalTag::kBoolean), {&b, 1});
}

std::vector<std::uint8_t> encode_integer_content(std::int64_t v) {
  // Emit minimal two's complement, at least one octet.
  std::vector<std::uint8_t> out;
  bool more = true;
  while (more) {
    const std::uint8_t octet = static_cast<std::uint8_t>(v & 0xFF);
    v >>= 8;
    // Done when remaining bits plus this octet's sign bit collapse to pure
    // sign extension.
    more = !((v == 0 && (octet & 0x80) == 0) || (v == -1 && (octet & 0x80) != 0));
    out.push_back(octet);
  }
  return {out.rbegin(), out.rend()};
}

void Writer::add_small_integer(std::int64_t v) {
  const auto content = encode_integer_content(v);
  add_tlv(primitive(UniversalTag::kInteger), content);
}

void Writer::add_unsigned_big_integer(std::span<const std::uint8_t> magnitude) {
  std::size_t i = 0;
  while (i + 1 < magnitude.size() && magnitude[i] == 0) ++i;  // strip zeros
  std::vector<std::uint8_t> content;
  if (magnitude.empty()) {
    content.push_back(0);
  } else {
    if (magnitude[i] & 0x80) content.push_back(0);  // keep it non-negative
    content.insert(content.end(), magnitude.begin() + static_cast<std::ptrdiff_t>(i),
                   magnitude.end());
  }
  add_tlv(primitive(UniversalTag::kInteger), content);
}

void Writer::add_oid(const Oid& oid) {
  add_tlv(primitive(UniversalTag::kOid), oid.to_der_content());
}

void Writer::add_octet_string(std::span<const std::uint8_t> bytes) {
  add_tlv(primitive(UniversalTag::kOctetString), bytes);
}

void Writer::add_bit_string(std::span<const std::uint8_t> bytes,
                            std::uint8_t unused_bits) {
  std::vector<std::uint8_t> content;
  content.reserve(bytes.size() + 1);
  content.push_back(unused_bits);
  content.insert(content.end(), bytes.begin(), bytes.end());
  add_tlv(primitive(UniversalTag::kBitString), content);
}

void Writer::add_null() { add_tlv(primitive(UniversalTag::kNull), {}); }

namespace {
std::span<const std::uint8_t> as_bytes(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}
}  // namespace

void Writer::add_utf8_string(std::string_view s) {
  add_tlv(primitive(UniversalTag::kUtf8String), as_bytes(s));
}

void Writer::add_printable_string(std::string_view s) {
  add_tlv(primitive(UniversalTag::kPrintableString), as_bytes(s));
}

void Writer::add_ia5_string(std::string_view s) {
  add_tlv(primitive(UniversalTag::kIa5String), as_bytes(s));
}

void Writer::add_sequence(const Writer& child) {
  add_tlv(constructed(UniversalTag::kSequence), child.bytes());
}

void Writer::add_set(const Writer& child) {
  add_tlv(constructed(UniversalTag::kSet), child.bytes());
}

void Writer::add_context(std::uint8_t n, const Writer& child) {
  add_tlv(context(n), child.bytes());
}

void Writer::add_context_primitive(std::uint8_t n,
                                   std::span<const std::uint8_t> content) {
  add_tlv(context_primitive(n), content);
}

}  // namespace rs::asn1
