#include "src/asn1/reader.h"

#include <cstdio>
#include <variant>

namespace rs::asn1 {

using rs::util::Result;

std::string Reader::errmsg(const std::string& what) const {
  return "DER error at offset " + std::to_string(offset()) + ": " + what;
}

Result<std::uint8_t> Reader::peek_tag() const {
  if (at_end()) return Result<std::uint8_t>::err(errmsg("unexpected end of input"));
  const std::uint8_t t = data_[pos_];
  if ((t & 0x1F) == 0x1F) {
    return Result<std::uint8_t>::err(errmsg("multi-byte tags unsupported"));
  }
  return t;
}

bool Reader::next_is(std::uint8_t tag) const noexcept {
  return pos_ < data_.size() && data_[pos_] == tag;
}

Result<Element> Reader::read_tlv() {
  auto tag = peek_tag();
  if (!tag) return tag.propagate<Element>();
  const std::size_t start = pos_;
  std::size_t p = pos_ + 1;

  if (p >= data_.size()) return Result<Element>::err(errmsg("missing length"));
  const std::uint8_t first_len = data_[p++];
  std::size_t length = 0;
  if (first_len < 0x80) {
    length = first_len;
  } else if (first_len == 0x80) {
    return Result<Element>::err(errmsg("indefinite length forbidden in DER"));
  } else {
    const std::size_t num_octets = first_len & 0x7F;
    if (num_octets > sizeof(std::size_t)) {
      return Result<Element>::err(errmsg("length too large"));
    }
    if (p + num_octets > data_.size()) {
      return Result<Element>::err(errmsg("truncated length"));
    }
    if (data_[p] == 0x00) {
      return Result<Element>::err(errmsg("non-minimal length (leading zero)"));
    }
    for (std::size_t i = 0; i < num_octets; ++i) {
      length = (length << 8) | data_[p++];
    }
    if (length < 0x80) {
      return Result<Element>::err(errmsg("non-minimal length (long form for short value)"));
    }
  }
  if (length > data_.size() - p) {
    return Result<Element>::err(errmsg("content extends past end of input"));
  }

  Element el;
  el.tag = tag.value();
  el.content = data_.subspan(p, length);
  el.full = data_.subspan(start, (p - start) + length);
  pos_ = p + length;
  return el;
}

Result<Element> Reader::read_any() { return read_tlv(); }

Result<Element> Reader::read(std::uint8_t tag) {
  const std::size_t saved = pos_;
  auto el = read_tlv();
  if (!el) return el;
  if (el.value().tag != tag) {
    pos_ = saved;
    char buf[96];
    std::snprintf(buf, sizeof(buf), "expected tag 0x%02X, found 0x%02X", tag,
                  el.value().tag);
    return Result<Element>::err(errmsg(buf));
  }
  return el;
}

Result<Reader> Reader::descend(std::uint8_t tag) {
  if (depth_ >= kMaxDepth) {
    return Result<Reader>::err(errmsg("nesting deeper than " +
                                      std::to_string(kMaxDepth) + " levels"));
  }
  auto el = read(tag);
  if (!el) return el.propagate<Reader>();
  const std::size_t content_base =
      base_ + static_cast<std::size_t>(el.value().content.data() - data_.data());
  return Reader(el.value().content, content_base, depth_ + 1);
}

Result<Reader> Reader::read_sequence() {
  return descend(constructed(UniversalTag::kSequence));
}

Result<Reader> Reader::read_set() {
  return descend(constructed(UniversalTag::kSet));
}

Result<Reader> Reader::read_context(std::uint8_t n) {
  return descend(context(n));
}

Result<bool> Reader::read_boolean() {
  auto el = read(primitive(UniversalTag::kBoolean));
  if (!el) return el.propagate<bool>();
  const auto& c = el.value().content;
  if (c.size() != 1) return Result<bool>::err(errmsg("BOOLEAN must be 1 byte"));
  if (c[0] == 0x00) return false;
  if (c[0] == 0xFF) return true;
  return Result<bool>::err(errmsg("BOOLEAN must be 0x00 or 0xFF in DER"));
}

namespace {
// DER minimal-integer check on content octets.
bool integer_is_minimal(std::span<const std::uint8_t> c) {
  if (c.empty()) return false;
  if (c.size() == 1) return true;
  // First 9 bits must not be all-zero or all-one.
  if (c[0] == 0x00 && (c[1] & 0x80) == 0) return false;
  if (c[0] == 0xFF && (c[1] & 0x80) != 0) return false;
  return true;
}
}  // namespace

Result<std::int64_t> Reader::read_small_integer() {
  auto el = read(primitive(UniversalTag::kInteger));
  if (!el) return el.propagate<std::int64_t>();
  const auto& c = el.value().content;
  if (!integer_is_minimal(c)) {
    return Result<std::int64_t>::err(errmsg("non-minimal INTEGER"));
  }
  if (c.size() > 8) {
    return Result<std::int64_t>::err(errmsg("INTEGER exceeds 64 bits"));
  }
  std::int64_t v = (c[0] & 0x80) ? -1 : 0;  // sign-extend
  for (std::uint8_t b : c) v = (v << 8) | b;
  return v;
}

Result<std::vector<std::uint8_t>> Reader::read_big_integer() {
  auto el = read(primitive(UniversalTag::kInteger));
  if (!el) return el.propagate<std::vector<std::uint8_t>>();
  const auto& c = el.value().content;
  if (!integer_is_minimal(c)) {
    return Result<std::vector<std::uint8_t>>::err(errmsg("non-minimal INTEGER"));
  }
  return std::vector<std::uint8_t>(c.begin(), c.end());
}

Result<Oid> Reader::read_oid() {
  auto el = read(primitive(UniversalTag::kOid));
  if (!el) return el.propagate<Oid>();
  auto oid = Oid::from_der_content(el.value().content);
  if (!oid) return Result<Oid>::err(errmsg("malformed OBJECT IDENTIFIER"));
  return *oid;
}

Result<std::vector<std::uint8_t>> Reader::read_octet_string() {
  auto el = read(primitive(UniversalTag::kOctetString));
  if (!el) return el.propagate<std::vector<std::uint8_t>>();
  const auto& c = el.value().content;
  return std::vector<std::uint8_t>(c.begin(), c.end());
}

Result<Reader::BitString> Reader::read_bit_string() {
  auto el = read(primitive(UniversalTag::kBitString));
  if (!el) return el.propagate<BitString>();
  const auto& c = el.value().content;
  if (c.empty()) return Result<BitString>::err(errmsg("empty BIT STRING"));
  const std::uint8_t unused = c[0];
  if (unused > 7) {
    return Result<BitString>::err(errmsg("BIT STRING unused bits > 7"));
  }
  if (c.size() == 1 && unused != 0) {
    return Result<BitString>::err(errmsg("empty BIT STRING with unused bits"));
  }
  BitString bs;
  bs.unused_bits = unused;
  bs.bytes.assign(c.begin() + 1, c.end());
  return bs;
}

namespace {
bool printable_char_ok(char ch) {
  if ((ch >= 'A' && ch <= 'Z') || (ch >= 'a' && ch <= 'z') ||
      (ch >= '0' && ch <= '9')) {
    return true;
  }
  constexpr std::string_view kAllowed = " '()+,-./:=?";
  return kAllowed.find(ch) != std::string_view::npos;
}
}  // namespace

Result<std::string> Reader::read_string() {
  auto tag = peek_tag();
  if (!tag) return tag.propagate<std::string>();
  const std::uint8_t t = tag.value();
  if (t != primitive(UniversalTag::kUtf8String) &&
      t != primitive(UniversalTag::kPrintableString) &&
      t != primitive(UniversalTag::kIa5String) &&
      t != primitive(UniversalTag::kT61String)) {
    return Result<std::string>::err(errmsg("expected a string type"));
  }
  auto el = read(t);
  if (!el) return el.propagate<std::string>();
  std::string s(el.value().content.begin(), el.value().content.end());
  if (t == primitive(UniversalTag::kPrintableString)) {
    for (char ch : s) {
      if (!printable_char_ok(ch)) {
        return Result<std::string>::err(
            errmsg("invalid character in PrintableString"));
      }
    }
  }
  return s;
}

Result<std::monostate> Reader::read_null() {
  auto el = read(primitive(UniversalTag::kNull));
  if (!el) return el.propagate<std::monostate>();
  if (!el.value().content.empty()) {
    return Result<std::monostate>::err(errmsg("NULL must have empty content"));
  }
  return std::monostate{};
}

}  // namespace rs::asn1
