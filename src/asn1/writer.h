// DER writer (X.690) with canonical encodings.
//
// The writer builds DER bottom-up: leaf emitters append complete TLVs, and
// nested structures are composed by encoding children into a buffer and
// wrapping it.  All output is canonical DER (minimal lengths, minimal
// integers), so encode(parse(x)) == x holds for well-formed input — the
// property tests rely on this.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "src/asn1/oid.h"
#include "src/asn1/tag.h"

namespace rs::asn1 {

/// Append-only DER output buffer.
class Writer {
 public:
  Writer() = default;

  const std::vector<std::uint8_t>& bytes() const noexcept { return buf_; }
  std::vector<std::uint8_t> take() && noexcept { return std::move(buf_); }

  /// Appends a complete TLV with the given identifier octet and content.
  void add_tlv(std::uint8_t tag, std::span<const std::uint8_t> content);

  /// Appends pre-encoded DER verbatim (already a complete TLV).
  void add_raw(std::span<const std::uint8_t> der);

  void add_boolean(bool v);

  /// INTEGER from a signed 64-bit value (minimal two's complement).
  void add_small_integer(std::int64_t v);

  /// INTEGER from raw big-endian *unsigned* magnitude; inserts a leading
  /// zero octet if the high bit is set and strips redundant leading zeros.
  void add_unsigned_big_integer(std::span<const std::uint8_t> magnitude);

  void add_oid(const Oid& oid);
  void add_octet_string(std::span<const std::uint8_t> bytes);
  void add_bit_string(std::span<const std::uint8_t> bytes,
                      std::uint8_t unused_bits = 0);
  void add_null();

  void add_utf8_string(std::string_view s);
  void add_printable_string(std::string_view s);
  void add_ia5_string(std::string_view s);

  /// Wraps `child.bytes()` in a constructed SEQUENCE.
  void add_sequence(const Writer& child);
  /// Wraps in a constructed SET (caller is responsible for DER SET-OF
  /// ordering if required).
  void add_set(const Writer& child);
  /// Wraps in constructed context-specific [n].
  void add_context(std::uint8_t n, const Writer& child);
  /// Primitive context-specific [n] with raw content.
  void add_context_primitive(std::uint8_t n,
                             std::span<const std::uint8_t> content);

 private:
  void add_length(std::size_t len);

  std::vector<std::uint8_t> buf_;
};

/// Encodes the minimal two's-complement content octets of `v`.
std::vector<std::uint8_t> encode_integer_content(std::int64_t v);

}  // namespace rs::asn1
