// Header-only adapter: TrustIndex → landscape presence views.
//
// rs_landscape deliberately does not link rs_query (the engine inside
// rs_query calls INTO the landscape computations, so a library dependency
// in the other direction would be a cycle).  These inline helpers are the
// bridge: any translation unit that already links rs_query (engine.cpp,
// study.cpp, tests, benches) can include this header to resolve an index
// into the borrowed IdSet views and first-seen tables the landscape
// functions consume.  Views borrow from the index and stay valid for its
// lifetime.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/landscape/ct_landscape.h"
#include "src/landscape/presence.h"
#include "src/query/trust_index.h"
#include "src/store/id_set.h"
#include "src/util/date.h"

namespace rs::landscape {

/// Every covered provider's resolved store at one date, provider-name
/// order.  `providers`/`sets` are parallel; providers whose coverage
/// excludes `date` land in `not_covered` instead (also name order).
struct PresenceView {
  std::vector<std::string> providers;
  std::vector<const rs::store::IdSet*> sets;
  std::vector<std::string> not_covered;
};

inline PresenceView presence_at(const rs::query::TrustIndex& index,
                                rs::util::Date date,
                                rs::query::Scope scope) {
  PresenceView view;
  for (const auto& name : index.providers()) {
    const auto resolved = index.store_at(name, date, scope);
    if (resolved) {
      view.providers.push_back(name);
      view.sets.push_back(resolved->roots);
    } else {
      view.not_covered.push_back(name);
    }
  }
  return view;
}

/// Per-provider first-seen tables over the whole history: for each
/// provider (index provider-name order) and each dense certificate ID, the
/// `added` date of the certificate's earliest presence interval in that
/// provider's history, or nullopt if it never appears under `scope`.
/// Built from one lineage sweep over the interner universe.
inline std::vector<FirstSeen> first_seen_tables(
    const rs::query::TrustIndex& index, rs::query::Scope scope) {
  const auto names = index.providers();
  const std::size_t universe = index.interner().size();
  std::vector<FirstSeen> tables(names.size(), FirstSeen(universe));
  for (std::uint32_t id = 0; id < universe; ++id) {
    const auto spans = index.lineage(index.interner().digest_of(id), scope);
    for (const auto& s : spans) {
      for (std::size_t p = 0; p < names.size(); ++p) {
        if (names[p] != s.provider) continue;
        auto& slot = tables[p][id];
        // lineage() yields ascending `added` per provider, so the first
        // span seen for a provider is its earliest — but don't rely on it.
        if (!slot || s.interval.added < *slot) slot = s.interval.added;
        break;
      }
    }
  }
  return tables;
}

}  // namespace rs::landscape
