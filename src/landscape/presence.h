// Cross-store disparity primitives over interned presence vectors.
//
// Purushothaman et al. ("Certificate Root Stores: An Area of Unity or
// Disparity?") formalize what Table 6 only hints at: given every
// provider's resolved store at a common date, how much do the stores
// actually agree?  This module computes those metrics — pairwise and
// global agreement scores, union/intersection sizes, and per-provider
// exclusive sets — as pure set algebra over `IdSet` presence vectors.
//
// Layering: rs_landscape sits BELOW rs_query by design.  Everything here
// operates on borrowed `const IdSet*` vectors; the header-only adapter in
// src/landscape/index_view.h resolves a TrustIndex into such views for the
// engine, the study reports, and the tests.  All integer cardinalities are
// exact, so every derived double (and its fixed-precision rendering) is
// bit-identical to a brute-force FingerprintSet recomputation — the
// differential battery in tests/landscape/ holds that line.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/store/id_set.h"

namespace rs::exec {
class ThreadPool;
}

namespace rs::landscape {

/// One unordered provider pair's overlap, indexed into the caller's
/// provider order.  `agreement` is |A∩B| / |A∪B| (1.0 when both empty),
/// derived from the exact integer cardinalities below.
struct PairScore {
  std::size_t a = 0;  // index of the first provider (a < b)
  std::size_t b = 0;
  std::size_t intersection = 0;
  std::size_t union_size = 0;
};

/// Agreement metrics over one presence vector (one set per provider, all
/// interned against the same CertInterner).
struct AgreementSummary {
  std::vector<std::size_t> sizes;             // per provider, input order
  std::vector<std::size_t> exclusive_counts;  // roots only that provider has
  std::vector<PairScore> pairs;               // upper triangle, row-major
  std::size_t union_size = 0;
  std::size_t intersection_size = 0;
};

/// The agreement score for one exact cardinality pair: |∩| / |∪|, with the
/// empty-universe convention |∩|=|∪|=0 scoring 1.0 (two empty stores agree).
double agreement_score(std::size_t intersection, std::size_t union_size) noexcept;

/// Renders `numerator/denominator` with `digits` fixed decimals ("0.954321").
/// Both the engine responses and the reports format ratios through this one
/// function so a referee reproducing the integers reproduces the bytes.
std::string format_ratio(double numerator, double denominator, int digits);

/// Renders agreement_score(intersection, union_size) with 6 fixed decimals
/// — the canonical representation in responses and reports.
std::string format_agreement(std::size_t intersection,
                             std::size_t union_size);

/// Per-provider exclusive sets: exclusive[i] = candidates[i] minus the
/// union of held[j] for every j != i.  `held` may alias `candidates`
/// (at-date exclusivity) or be a wider set (Table 6 uses ever-trusted
/// sets as `held` with latest-snapshot sets as candidates).  Computed with
/// prefix/suffix union accumulators: O(P · words) instead of O(P² · words).
/// Requires candidates.size() == held.size(); entries must be non-null.
std::vector<rs::store::IdSet> exclusive_sets(
    const std::vector<const rs::store::IdSet*>& candidates,
    const std::vector<const rs::store::IdSet*>& held);

/// Full agreement summary over one presence vector.  `pool` parallelizes
/// the pairwise popcounts; results are identical for any worker count
/// (integer cardinalities, disjoint writes, fixed pair order).
AgreementSummary agreement_summary(
    const std::vector<const rs::store::IdSet*>& sets,
    rs::exec::ThreadPool* pool = nullptr);

}  // namespace rs::landscape
