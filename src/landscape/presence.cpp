#include "src/landscape/presence.h"

#include <cstdio>

#include "src/exec/thread_pool.h"
#include "src/obs/registry.h"
#include "src/obs/span.h"

namespace rs::landscape {

using rs::store::IdSet;

double agreement_score(std::size_t intersection,
                       std::size_t union_size) noexcept {
  if (union_size == 0) return 1.0;
  return static_cast<double>(intersection) / static_cast<double>(union_size);
}

std::string format_ratio(double numerator, double denominator, int digits) {
  const double value = denominator == 0.0 ? 0.0 : numerator / denominator;
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

std::string format_agreement(std::size_t intersection,
                             std::size_t union_size) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6f",
                agreement_score(intersection, union_size));
  return buf;
}

std::vector<IdSet> exclusive_sets(
    const std::vector<const IdSet*>& candidates,
    const std::vector<const IdSet*>& held) {
  const std::size_t n = candidates.size();
  std::vector<IdSet> out(n);
  if (n == 0) return out;
  if (n == 1) {
    out[0] = *candidates[0];
    return out;
  }
  // prefix[i] = union of held[0..i); suffix[i] = union of held[i+1..n).
  // exclusive[i] = candidates[i] \ (prefix[i] | suffix[i]).
  std::vector<IdSet> prefix(n);
  for (std::size_t i = 1; i < n; ++i) {
    prefix[i] = prefix[i - 1];
    prefix[i] |= *held[i - 1];
  }
  IdSet suffix;
  for (std::size_t i = n; i-- > 0;) {
    IdSet others = prefix[i];
    others |= suffix;
    out[i] = candidates[i]->difference(others);
    suffix |= *held[i];
  }
  return out;
}

AgreementSummary agreement_summary(const std::vector<const IdSet*>& sets,
                                   rs::exec::ThreadPool* pool) {
  rs::obs::Span span("landscape/agreement");
  AgreementSummary out;
  const std::size_t n = sets.size();
  out.sizes.reserve(n);
  for (const IdSet* s : sets) out.sizes.push_back(s->size());

  // Union / intersection across all providers.
  if (n > 0) {
    IdSet all = *sets[0];
    IdSet common = *sets[0];
    for (std::size_t i = 1; i < n; ++i) {
      all |= *sets[i];
      common = common.intersection(*sets[i]);
    }
    out.union_size = all.size();
    out.intersection_size = common.size();
  }

  const auto exclusives = exclusive_sets(sets, sets);
  out.exclusive_counts.reserve(n);
  for (const IdSet& e : exclusives) out.exclusive_counts.push_back(e.size());

  // Pairwise overlaps: flatten the upper triangle so the pool can chunk
  // it; each slot is written exactly once (disjoint outputs), and the
  // cardinalities are integers, so any worker count yields the same bytes.
  const std::size_t pair_count = n < 2 ? 0 : n * (n - 1) / 2;
  out.pairs.resize(pair_count);
  if (pair_count > 0) {
    // Row offsets: pairs of row a start at offset[a].
    std::vector<std::size_t> offset(n, 0);
    for (std::size_t a = 1; a < n; ++a) {
      offset[a] = offset[a - 1] + (n - a);
    }
    rs::exec::parallel_for(pool, pair_count, [&](std::size_t k) {
      // Invert the flat index to (a, b): find the row by scanning offsets
      // (n is small — tens of providers — so linear is fine).
      std::size_t a = 0;
      while (a + 1 < n && offset[a + 1] <= k) ++a;
      const std::size_t b = a + 1 + (k - offset[a]);
      PairScore& p = out.pairs[k];
      p.a = a;
      p.b = b;
      p.intersection = sets[a]->intersection_size(*sets[b]);
      p.union_size = sets[a]->union_size(*sets[b]);
    });
  }
  span.set_items(pair_count);
  rs::obs::Registry::global().counter("landscape.pairs_scored")
      .add(pair_count);
  return out;
}

}  // namespace rs::landscape
