// CT-log root-landscape comparisons.
//
// Korzhitskii & Carlsson ("Characterizing the Root Landscape of
// Certificate Transparency Logs") treat log accepted-roots lists as trust
// stores in their own right.  Given one provider designated as "the log"
// and the rest as browsers/stores, this module computes coverage (what
// share of each store the log accepts), log-exclusive roots (accepted by
// the log, held by nobody else), and adoption lag (days from a store's
// first adoption of a root to the log's first acceptance).
//
// Like presence.h, everything operates on borrowed IdSet views plus
// caller-supplied first-seen tables, so the same code answers the
// `ct_coverage` wire op, the report_ct_landscape study entry point, and
// the brute-force differential battery.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/store/id_set.h"
#include "src/util/date.h"

namespace rs::landscape {

/// Coverage of one store by the log.
struct CoverageRow {
  std::size_t store_size = 0;  // |store|
  std::size_t covered = 0;     // |store ∩ log|
};

/// Signed adoption-lag aggregate between a log and one store, over the
/// certificates present in both first-seen tables.  The mean stays exact:
/// it is rendered from the integer pair (total_lag_days, matched) via
/// format_ratio, never from an accumulated double.
struct LagStats {
  std::size_t matched = 0;           // roots first seen by both sides
  std::int64_t total_lag_days = 0;   // Σ (log_first - store_first), signed
};

/// Per-certificate first-seen dates for one provider, indexed by dense
/// certificate ID (absent = never present in that provider's history for
/// the queried scope).  Built by the index_view.h adapter.
using FirstSeen = std::vector<std::optional<rs::util::Date>>;

/// Coverage of each store in `stores` by `log` (parallel output order).
std::vector<CoverageRow> coverage_rows(
    const rs::store::IdSet& log,
    const std::vector<const rs::store::IdSet*>& stores);

/// Roots the log holds that no store in `stores` holds.
std::size_t log_exclusive_count(
    const rs::store::IdSet& log,
    const std::vector<const rs::store::IdSet*>& stores);

/// Adoption lag of `log_first` relative to `store_first`: for every
/// certificate ID with a date on both sides, accumulates
/// (log date - store date) in days.  Tables may differ in length; the
/// shorter one is treated as absent past its end.
LagStats adoption_lag(const FirstSeen& log_first, const FirstSeen& store_first);

}  // namespace rs::landscape
