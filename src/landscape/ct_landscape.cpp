#include "src/landscape/ct_landscape.h"

#include <algorithm>

#include "src/obs/registry.h"
#include "src/obs/span.h"

namespace rs::landscape {

using rs::store::IdSet;

std::vector<CoverageRow> coverage_rows(
    const IdSet& log, const std::vector<const IdSet*>& stores) {
  rs::obs::Span span("landscape/ct_coverage");
  std::vector<CoverageRow> out;
  out.reserve(stores.size());
  for (const IdSet* store : stores) {
    CoverageRow row;
    row.store_size = store->size();
    row.covered = log.intersection_size(*store);
    out.push_back(row);
  }
  span.set_items(stores.size());
  return out;
}

std::size_t log_exclusive_count(const IdSet& log,
                                const std::vector<const IdSet*>& stores) {
  IdSet others;
  for (const IdSet* store : stores) others |= *store;
  return log.difference(others).size();
}

LagStats adoption_lag(const FirstSeen& log_first,
                      const FirstSeen& store_first) {
  LagStats out;
  const std::size_t n = std::min(log_first.size(), store_first.size());
  for (std::size_t id = 0; id < n; ++id) {
    if (!log_first[id] || !store_first[id]) continue;
    ++out.matched;
    out.total_lag_days += *log_first[id] - *store_first[id];
  }
  rs::obs::Registry::global().counter("landscape.lag_roots").add(out.matched);
  return out;
}

}  // namespace rs::landscape
