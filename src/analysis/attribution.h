// User-agent to root-program attribution (Table 1 and Figure 2).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/synth/user_agents.h"

namespace rs::analysis {

/// Aggregated Table 1 coverage.
struct CoverageSummary {
  int total_user_agents = 0;     // sum of version counts (the "top 200")
  int included_user_agents = 0;  // those with a collected root store
  double coverage = 0;           // included / total
  /// Per-OS totals, for the table's grouping.
  std::map<std::string, int> per_os_total;
  std::map<std::string, int> per_os_included;
};

CoverageSummary coverage_summary(
    const std::vector<rs::synth::UserAgentGroup>& population);

/// Figure 2: share of the UA population attributable to each root program.
struct ProgramAttribution {
  std::map<std::string, int> ua_count;       // program name -> UA count
  std::map<std::string, double> ua_share;    // of the *total* population
  int unattributed = 0;
};

ProgramAttribution attribute_programs(
    const std::vector<rs::synth::UserAgentGroup>& population);

}  // namespace rs::analysis
