#include "src/analysis/operators.h"

#include <algorithm>

namespace rs::analysis {

std::size_t OperatorFootprint::total_roots() const {
  std::size_t n = 0;
  for (const auto& [_, count] : roots_per_program) n += count;
  return n;
}

namespace {

std::string operator_of(const rs::x509::Certificate& cert) {
  if (const auto org = cert.subject().organization()) return std::string(*org);
  if (const auto cn = cert.subject().common_name()) return std::string(*cn);
  return "(unknown operator)";
}

}  // namespace

std::vector<OperatorFootprint> operator_footprints(
    const rs::store::StoreDatabase& db,
    const std::vector<std::string>& programs) {
  std::map<std::string, OperatorFootprint> by_operator;
  for (const auto& program : programs) {
    const auto* history = db.find(program);
    if (history == nullptr || history->empty()) continue;
    for (const auto& entry : history->back().entries) {
      if (!entry.is_tls_anchor()) continue;
      const std::string op = operator_of(*entry.certificate);
      auto [it, inserted] = by_operator.try_emplace(op);
      if (inserted) it->second.operator_name = op;
      ++it->second.roots_per_program[program];
    }
  }
  std::vector<OperatorFootprint> out;
  out.reserve(by_operator.size());
  for (auto& [_, footprint] : by_operator) out.push_back(std::move(footprint));
  std::sort(out.begin(), out.end(),
            [](const OperatorFootprint& a, const OperatorFootprint& b) {
              if (a.program_count() != b.program_count()) {
                return a.program_count() > b.program_count();
              }
              return a.operator_name < b.operator_name;
            });
  return out;
}

std::vector<OperatorFootprint> single_program_operators(
    const rs::store::StoreDatabase& db,
    const std::vector<std::string>& programs) {
  auto all = operator_footprints(db, programs);
  std::erase_if(all, [](const OperatorFootprint& f) {
    return f.program_count() != 1;
  });
  return all;
}

}  // namespace rs::analysis
