#include "src/analysis/cadence.h"

#include <vector>

#include "src/store/fingerprint_set.h"
#include "src/util/stats.h"

namespace rs::analysis {

UpdateCadence update_cadence(const rs::store::ProviderHistory& history) {
  UpdateCadence out;
  out.provider = history.provider();
  out.snapshots = history.size();
  if (history.size() < 2) {
    out.substantial_updates = history.size();
    return out;
  }

  std::vector<double> intervals;
  std::vector<double> substantial_intervals;
  rs::store::FingerprintSet previous = history.front().all_fingerprints();
  rs::util::Date last_substantial = history.front().date;
  out.substantial_updates = 1;  // the first snapshot introduces the store

  for (std::size_t i = 1; i < history.size(); ++i) {
    const auto& snap = history.snapshots()[i];
    intervals.push_back(
        static_cast<double>(snap.date - history.snapshots()[i - 1].date));
    auto current = snap.all_fingerprints();
    if (current == previous) {
      ++out.noop_updates;
    } else {
      ++out.substantial_updates;
      substantial_intervals.push_back(
          static_cast<double>(snap.date - last_substantial));
      last_substantial = snap.date;
      previous = std::move(current);
    }
  }

  out.mean_interval_days = rs::util::mean(intervals);
  out.median_interval_days = rs::util::median(intervals);
  out.mean_substantial_interval_days = rs::util::mean(substantial_intervals);
  const double years =
      rs::util::years_between(history.first_date(), history.last_date());
  out.substantial_per_year =
      years > 0 ? static_cast<double>(out.substantial_updates) / years : 0;
  return out;
}

}  // namespace rs::analysis
