#include "src/analysis/cluster.h"

#include <algorithm>
#include <limits>
#include <numeric>

namespace rs::analysis {

Clustering cluster_snapshots(const DistanceMatrix& dist, double cutoff) {
  const std::size_t n = dist.size();
  Clustering out;
  out.assignment.assign(n, 0);
  if (n == 0) return out;

  // Union-find over single-linkage merges: link every pair below cutoff.
  std::vector<std::size_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  std::vector<std::size_t> rank(n, 0);
  auto find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&](std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (rank[a] < rank[b]) std::swap(a, b);
    parent[b] = a;
    if (rank[a] == rank[b]) ++rank[a];
  };

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (dist.at(i, j) < cutoff) unite(i, j);
    }
  }

  // Densify cluster ids.
  std::map<std::size_t, std::size_t> dense;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t root = find(i);
    const auto [it, inserted] = dense.emplace(root, dense.size());
    out.assignment[i] = it->second;
    (void)inserted;
  }
  out.cluster_count = dense.size();
  return out;
}

Clustering cluster_snapshots_complete(const DistanceMatrix& dist,
                                      double cutoff) {
  const std::size_t n = dist.size();
  Clustering out;
  out.assignment.assign(n, 0);
  if (n == 0) return out;

  // Naive agglomeration: repeatedly merge the pair of clusters whose
  // complete-linkage distance (max pairwise) is smallest and below cutoff.
  std::vector<std::vector<std::size_t>> clusters(n);
  for (std::size_t i = 0; i < n; ++i) clusters[i] = {i};

  auto complete_distance = [&](const std::vector<std::size_t>& a,
                               const std::vector<std::size_t>& b) {
    double worst = 0.0;
    for (std::size_t x : a) {
      for (std::size_t y : b) worst = std::max(worst, dist.at(x, y));
    }
    return worst;
  };

  while (clusters.size() > 1) {
    double best = cutoff;
    std::size_t bi = 0, bj = 0;
    bool found = false;
    for (std::size_t i = 0; i < clusters.size(); ++i) {
      for (std::size_t j = i + 1; j < clusters.size(); ++j) {
        const double d = complete_distance(clusters[i], clusters[j]);
        if (d < best) {
          best = d;
          bi = i;
          bj = j;
          found = true;
        }
      }
    }
    if (!found) break;
    clusters[bi].insert(clusters[bi].end(), clusters[bj].begin(),
                        clusters[bj].end());
    clusters.erase(clusters.begin() + static_cast<std::ptrdiff_t>(bj));
  }

  for (std::size_t k = 0; k < clusters.size(); ++k) {
    for (std::size_t row : clusters[k]) out.assignment[row] = k;
  }
  out.cluster_count = clusters.size();
  return out;
}

double silhouette_score(const DistanceMatrix& dist, const Clustering& c) {
  const std::size_t n = dist.size();
  if (n < 2 || c.cluster_count < 2) return 0.0;
  const auto members = cluster_members(c);

  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t own = c.assignment[i];
    if (members[own].size() < 2) continue;  // singleton contributes 0
    // a(i): mean distance to own cluster (excluding self).
    double a = 0.0;
    for (std::size_t j : members[own]) {
      if (j != i) a += dist.at(i, j);
    }
    a /= static_cast<double>(members[own].size() - 1);
    // b(i): smallest mean distance to another cluster.
    double b = 2.0;
    for (std::size_t k = 0; k < members.size(); ++k) {
      if (k == own || members[k].empty()) continue;
      double mean = 0.0;
      for (std::size_t j : members[k]) mean += dist.at(i, j);
      mean /= static_cast<double>(members[k].size());
      b = std::min(b, mean);
    }
    const double denom = std::max(a, b);
    if (denom > 0) total += (b - a) / denom;
  }
  return total / static_cast<double>(n);
}

std::vector<std::vector<std::size_t>> cluster_members(const Clustering& c) {
  std::vector<std::vector<std::size_t>> out(c.cluster_count);
  for (std::size_t i = 0; i < c.assignment.size(); ++i) {
    out[c.assignment[i]].push_back(i);
  }
  return out;
}

ClusterQuality cluster_quality(const Clustering& c,
                               const std::vector<std::string>& row_labels) {
  ClusterQuality out;
  const auto members = cluster_members(c);
  out.majority_label.resize(members.size());
  out.purity.resize(members.size());
  std::size_t agree_total = 0;
  for (std::size_t k = 0; k < members.size(); ++k) {
    std::map<std::string, std::size_t> counts;
    for (std::size_t row : members[k]) ++counts[row_labels[row]];
    std::size_t best = 0;
    for (const auto& [label, count] : counts) {
      if (count > best) {
        best = count;
        out.majority_label[k] = label;
      }
    }
    out.purity[k] = members[k].empty()
                        ? 0.0
                        : static_cast<double>(best) /
                              static_cast<double>(members[k].size());
    agree_total += best;
  }
  out.overall_purity =
      row_labels.empty() ? 0.0
                         : static_cast<double>(agree_total) /
                               static_cast<double>(row_labels.size());
  return out;
}

}  // namespace rs::analysis
