// CA-operator attribution (§5.2's unit of analysis).
//
// Table 6 reasons about *CAs*, not certificates: "Microsoft trusts the same
// issuer for email", "the new root accompanies an existing Microsec root".
// Following the paper's companion work (Ma et al., "What's in a Name?"),
// this module groups root certificates by operator — here the subject
// organizationName (falling back to commonName) — and reports per-operator
// trust across programs: which programs trust the operator, with how many
// roots, and operators trusted by exactly one program.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/store/database.h"

namespace rs::analysis {

/// One CA operator's footprint across root programs.
struct OperatorFootprint {
  std::string operator_name;
  /// program -> number of distinct roots TLS-trusted in its latest snapshot.
  std::map<std::string, std::size_t> roots_per_program;

  std::size_t program_count() const noexcept {
    return roots_per_program.size();
  }
  std::size_t total_roots() const;
};

/// Groups the latest TLS anchors of `programs` by operator.
std::vector<OperatorFootprint> operator_footprints(
    const rs::store::StoreDatabase& db,
    const std::vector<std::string>& programs);

/// Operators trusted by exactly one of the programs (the CA-level analog of
/// Table 6's exclusive roots).
std::vector<OperatorFootprint> single_program_operators(
    const rs::store::StoreDatabase& db,
    const std::vector<std::string>& programs);

}  // namespace rs::analysis
