// Metric multidimensional scaling (Figure 1).
//
// The paper embeds the pairwise Jaccard matrix into 2-D with sklearn's
// metric MDS (SMACOF stress majorization).  We implement both stages from
// scratch: classical (Torgerson) MDS via double-centering and power
// iteration for a good initialization, then SMACOF iterations with the
// Guttman transform until the stress improvement stalls.
#pragma once

#include <cstddef>
#include <vector>

#include "src/analysis/jaccard.h"
#include "src/exec/thread_pool.h"

namespace rs::analysis {

/// A 2-D embedding point.
struct Point2 {
  double x = 0;
  double y = 0;
};

/// SMACOF configuration.
struct MdsOptions {
  std::size_t max_iterations = 300;
  /// Stop when relative stress improvement falls below this.
  double tolerance = 1e-7;
  /// Skip the classical-MDS initialization and start from a deterministic
  /// pseudo-random layout (ablation knob; usually worse).
  bool random_init = false;
  std::uint64_t seed = 7;
};

/// Result of an embedding.
struct MdsResult {
  std::vector<Point2> points;       // one per matrix row
  double stress = 0;                // raw stress sigma = sum (d_ij - delta_ij)^2
  double normalized_stress = 0;     // stress / sum delta_ij^2
  std::size_t iterations = 0;
};

/// Classical (Torgerson) MDS to 2-D: eigendecomposition of the
/// double-centered squared-distance matrix via deflated power iteration.
MdsResult classical_mds(const DistanceMatrix& dist);

/// Metric MDS via SMACOF, initialized from classical MDS (or random).
/// `pool` parallelizes the Guttman transform and stress evaluation per
/// iteration; results are bitwise-identical for any worker count (fixed
/// chunking, per-row partials combined in row order).
MdsResult smacof_mds(const DistanceMatrix& dist, const MdsOptions& options = {},
                     rs::exec::ThreadPool* pool = nullptr);

/// Raw stress of an embedding against a distance matrix.  Accumulates
/// per-row partial sums and combines them in row order, so the value is
/// identical whether computed serially or on a pool.
double embedding_stress(const DistanceMatrix& dist,
                        const std::vector<Point2>& points,
                        rs::exec::ThreadPool* pool = nullptr);

}  // namespace rs::analysis
