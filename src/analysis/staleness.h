// Derivative staleness against NSS substantial versions (Figure 3).
//
// A "substantial version" is an NSS snapshot that changed the TLS-trusted
// root set.  Each derivative snapshot is matched to its closest substantial
// version by Jaccard distance; the gap between that version and NSS's
// current version, integrated over time, yields the paper's
// "substantial-version-days" staleness measure.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/exec/thread_pool.h"
#include "src/store/fingerprint_set.h"
#include "src/store/interner.h"
#include "src/store/snapshot.h"
#include "src/util/date.h"

namespace rs::analysis {

/// The ordered list of NSS substantial versions.
///
/// When built with a CertInterner (the default), each version also carries
/// its TLS set interned as a bitset, and closest_match scans via popcount
/// instead of digest merges — same exact cardinalities, so the matched
/// version is identical (see docs/INTERNING.md).
class NssVersionIndex {
 public:
  struct Version {
    std::size_t index = 0;  // 1-based substantial version number
    rs::util::Date date;
    std::string label;      // snapshot version string
    rs::store::FingerprintSet tls_anchors;
    /// Interned form of tls_anchors (empty when no interner is attached).
    rs::store::InternedSet tls_interned;
  };

  /// Merge-only index: closest_match falls back to digest merges.
  explicit NssVersionIndex(std::vector<Version> versions)
      : versions_(std::move(versions)) {}

  /// Interned index: interns every version's TLS set up front.
  NssVersionIndex(std::vector<Version> versions,
                  std::shared_ptr<const rs::store::CertInterner> interner);

  const std::vector<Version>& versions() const noexcept { return versions_; }
  std::size_t size() const noexcept { return versions_.size(); }

  /// The interner the index (and its dependent analyses) run on, or null
  /// for a merge-only index.
  const rs::store::CertInterner* interner() const noexcept {
    return interner_.get();
  }

  /// Latest substantial version dated on or before `when` (nullptr if none).
  const Version* current_at(rs::util::Date when) const;

  /// The version whose TLS set is Jaccard-closest to `anchors`
  /// (ties broken toward the earlier version).  nullptr if empty.
  /// Uses the popcount scan when an interner is attached.
  const Version* closest_match(const rs::store::FingerprintSet& anchors) const;

  /// The legacy merge-based scan, regardless of interner (equivalence
  /// tests and BENCH_intern.json compare it against closest_match).
  const Version* closest_match_merge(
      const rs::store::FingerprintSet& anchors) const;

 private:
  std::vector<Version> versions_;
  std::shared_ptr<const rs::store::CertInterner> interner_;
};

/// Extracts substantial versions from the NSS history: the first snapshot
/// plus every snapshot whose TLS-anchor set differs from its predecessor.
/// `interner` fixes the dense-ID universe (EcosystemStudy passes its
/// database-wide one); null interns the NSS history itself.  Digests
/// outside the universe are corrected exactly, so every choice produces
/// identical analysis results.
NssVersionIndex build_version_index(
    const rs::store::ProviderHistory& nss,
    std::shared_ptr<const rs::store::CertInterner> interner = nullptr);

/// A merge-only index with no interning (legacy engine, for equivalence
/// tests and benchmarks).
NssVersionIndex build_version_index_merge(
    const rs::store::ProviderHistory& nss);

/// One derivative snapshot's staleness sample.
struct StalenessPoint {
  rs::util::Date date;
  std::size_t matched_version = 0;  // substantial version copied
  std::size_t current_version = 0;  // NSS's version at that date
  double versions_behind = 0;       // max(0, current - matched)
};

/// Figure 3 series for one derivative.
struct StalenessResult {
  std::string provider;
  std::vector<StalenessPoint> points;
  /// Time-weighted average versions-behind across the sampled range.
  double avg_versions_behind = 0;
  /// True if the derivative was behind at every sample ("always stale").
  bool always_stale = false;
};

/// Computes the staleness series.  Snapshots are independent, so `pool`
/// parallelizes the per-snapshot version matching; points stay in snapshot
/// order and the result is identical for any worker count.
StalenessResult derivative_staleness(const rs::store::ProviderHistory& deriv,
                                     const NssVersionIndex& index,
                                     rs::exec::ThreadPool* pool = nullptr);

}  // namespace rs::analysis
