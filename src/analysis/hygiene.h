// Root-program hygiene metrics (Table 3).
//
// Per program: average store size across snapshots, average count of
// expired-but-retained roots, and the dates the program finally purged
// MD5-signed and 1024-bit-RSA roots from its TLS trust.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/store/snapshot.h"
#include "src/util/date.h"

namespace rs::analysis {

/// Measured hygiene of one provider.
struct HygieneMetrics {
  std::string provider;
  double avg_size = 0;
  double avg_expired = 0;
  /// Date of the first snapshot in which no MD5-signed TLS root remains
  /// (after at least one was present); nullopt if never present or never
  /// removed.
  std::optional<rs::util::Date> md5_removed;
  std::optional<rs::util::Date> weak_rsa_removed;
  /// Still carrying MD5 / 1024-bit roots in the newest snapshot.
  bool md5_still_present = false;
  bool weak_rsa_still_present = false;
};

HygieneMetrics hygiene_metrics(const rs::store::ProviderHistory& history);

}  // namespace rs::analysis
