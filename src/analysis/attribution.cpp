#include "src/analysis/attribution.h"

namespace rs::analysis {

CoverageSummary coverage_summary(
    const std::vector<rs::synth::UserAgentGroup>& population) {
  CoverageSummary out;
  for (const auto& g : population) {
    out.total_user_agents += g.versions;
    out.per_os_total[g.os] += g.versions;
    if (g.included) {
      out.included_user_agents += g.versions;
      out.per_os_included[g.os] += g.versions;
    }
  }
  out.coverage = out.total_user_agents > 0
                     ? static_cast<double>(out.included_user_agents) /
                           static_cast<double>(out.total_user_agents)
                     : 0.0;
  return out;
}

ProgramAttribution attribute_programs(
    const std::vector<rs::synth::UserAgentGroup>& population) {
  ProgramAttribution out;
  int total = 0;
  for (const auto& g : population) {
    total += g.versions;
    if (g.provider.empty()) {
      out.unattributed += g.versions;
      continue;
    }
    const auto program = rs::synth::program_of_provider(g.provider);
    if (!program) {
      out.unattributed += g.versions;
      continue;
    }
    out.ua_count[rs::synth::to_string(*program)] += g.versions;
  }
  for (const auto& [program, count] : out.ua_count) {
    out.ua_share[program] =
        total > 0 ? static_cast<double>(count) / static_cast<double>(total)
                  : 0.0;
  }
  return out;
}

}  // namespace rs::analysis
