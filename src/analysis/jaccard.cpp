#include "src/analysis/jaccard.h"

#include <algorithm>

#include "src/store/fingerprint_set.h"

namespace rs::analysis {

DistanceMatrix jaccard_matrix(const rs::store::StoreDatabase& db,
                              const JaccardOptions& options,
                              rs::exec::ThreadPool* pool) {
  DistanceMatrix out;
  // Phase 1 (serial): select snapshots and fix the matrix order.
  std::vector<const rs::store::Snapshot*> chosen;
  for (const auto& [name, history] : db.histories()) {
    // Collect candidate indices honouring the date window.
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < history.size(); ++i) {
      const auto& s = history.snapshots()[i];
      if (options.min_date && s.date < *options.min_date) continue;
      if (options.max_date && s.date > *options.max_date) continue;
      idx.push_back(i);
    }
    // Uniform subsample if requested (keep ends, stride the middle).
    if (options.max_per_provider > 0 && idx.size() > options.max_per_provider) {
      std::vector<std::size_t> kept;
      const double stride = static_cast<double>(idx.size() - 1) /
                            static_cast<double>(options.max_per_provider - 1);
      for (std::size_t k = 0; k < options.max_per_provider; ++k) {
        kept.push_back(idx[static_cast<std::size_t>(
            static_cast<double>(k) * stride + 0.5)]);
      }
      kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
      idx = std::move(kept);
    }

    for (std::size_t i : idx) {
      const auto& s = history.snapshots()[i];
      out.labels.push_back(SnapshotRef{name, s.date, s.version, i});
      chosen.push_back(&s);
    }
  }

  const std::size_t n = out.labels.size();

  // Phase 2 (parallel): materialize each snapshot's fingerprint set exactly
  // once.  The pair loop below only reads this cache, so the O(n^2) phase
  // never re-sorts or re-collects certificate fingerprints.
  std::vector<rs::store::FingerprintSet> sets(n);
  rs::exec::parallel_for(pool, n, [&](std::size_t i) {
    sets[i] = options.set_kind == SetKind::kAllCertificates
                  ? chosen[i]->all_fingerprints()
                  : chosen[i]->tls_anchors();
  });

  // Phase 3 (parallel): upper-triangle row blocks.  Each pair (i, j > i) is
  // computed by exactly one task and written to two distinct cells, so the
  // result is independent of scheduling.
  out.values.assign(n * n, 0.0);
  rs::exec::parallel_for(pool, n, [&](std::size_t i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d = sets[i].jaccard_distance(sets[j]);
      out.values[i * n + j] = d;
      out.values[j * n + i] = d;
    }
  });
  return out;
}

}  // namespace rs::analysis
