#include "src/analysis/jaccard.h"

#include <algorithm>

#include "src/obs/registry.h"
#include "src/obs/span.h"
#include "src/store/fingerprint_set.h"
#include "src/store/interner.h"

namespace rs::analysis {

namespace {

// Stage-granular accounting: the pair loop itself stays untouched (the
// disabled-overhead gate in BENCH_obs.json protects it); counts are
// derived arithmetically after the loops complete.
void note_matrix(rs::obs::Span& span, std::size_t n) {
  auto& reg = rs::obs::Registry::global();
  if (!reg.enabled()) return;
  const std::uint64_t pairs = n < 2 ? 0 : n * (n - 1) / 2;
  span.set_items(pairs);
  reg.counter("analysis.jaccard_pairs").add(pairs);
  // Each pair reads two cached (interned or materialized) sets.
  reg.counter("analysis.set_cache_hits").add(2 * pairs);
}

}  // namespace

DistanceMatrix jaccard_matrix(const rs::store::StoreDatabase& db,
                              const JaccardOptions& options,
                              rs::exec::ThreadPool* pool,
                              const rs::store::CertInterner* interner) {
  rs::obs::Span matrix_span("jaccard/matrix");
  DistanceMatrix out;
  // Phase 1 (serial): select snapshots and fix the matrix order.
  std::vector<const rs::store::Snapshot*> chosen;
  for (const auto& [name, history] : db.histories()) {
    // Collect candidate indices honouring the date window.
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < history.size(); ++i) {
      const auto& s = history.snapshots()[i];
      if (options.min_date && s.date < *options.min_date) continue;
      if (options.max_date && s.date > *options.max_date) continue;
      idx.push_back(i);
    }
    // Uniform subsample if requested (keep ends, stride the middle).
    if (options.max_per_provider > 0 && idx.size() > options.max_per_provider) {
      std::vector<std::size_t> kept;
      if (options.max_per_provider == 1) {
        // A single slot leaves no stride to compute (the formula below
        // would divide by zero); keep the most recent in-window snapshot.
        kept.push_back(idx.back());
      } else {
        const double stride = static_cast<double>(idx.size() - 1) /
                              static_cast<double>(options.max_per_provider - 1);
        for (std::size_t k = 0; k < options.max_per_provider; ++k) {
          kept.push_back(idx[static_cast<std::size_t>(
              static_cast<double>(k) * stride + 0.5)]);
        }
        kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
      }
      idx = std::move(kept);
    }

    for (std::size_t i : idx) {
      const auto& s = history.snapshots()[i];
      out.labels.push_back(SnapshotRef{name, s.date, s.version, i});
      chosen.push_back(&s);
    }
  }

  const std::size_t n = out.labels.size();
  out.values.assign(n * n, 0.0);

  if (options.algebra == SetAlgebra::kSortedMerge) {
    // Legacy engine: linear merges over sorted 32-byte digests.  Kept for
    // the merge-vs-interned equivalence suite and BENCH_intern.json.
    //
    // Phase 2 (parallel): materialize each snapshot's fingerprint set
    // exactly once; the pair loop only reads this cache.
    std::vector<rs::store::FingerprintSet> sets(n);
    {
      rs::obs::Span span("jaccard/sets");
      span.set_items(n);
      rs::exec::parallel_for(pool, n, [&](std::size_t i) {
        sets[i] = options.set_kind == SetKind::kAllCertificates
                      ? chosen[i]->all_fingerprints()
                      : chosen[i]->tls_anchors();
      });
    }

    // Phase 3 (parallel): upper-triangle row blocks.  Each pair (i, j > i)
    // is computed by exactly one task and written to two distinct cells, so
    // the result is independent of scheduling.
    {
      rs::obs::Span span("jaccard/pairs");
      rs::exec::parallel_for(pool, n, [&](std::size_t i) {
        for (std::size_t j = i + 1; j < n; ++j) {
          const double d = sets[i].jaccard_distance(sets[j]);
          out.values[i * n + j] = d;
          out.values[j * n + i] = d;
        }
      });
    }
    note_matrix(matrix_span, n);
    return out;
  }

  // Interned engine: dense IDs + packed bitsets, so each pair costs a few
  // popcounts per cache line instead of a 32-bytes-per-element merge.
  // A caller-provided interner (built once per database) is reused; else
  // intern the database here.  Digests outside the universe are carried in
  // InternedSet::unmapped and corrected exactly, so any interner yields the
  // same matrix.
  rs::store::CertInterner local;
  if (interner == nullptr) {
    local = rs::store::CertInterner::from_database(db);
    interner = &local;
  }

  // Phase 2 (parallel): intern each snapshot's fingerprint set exactly once
  // (read-only on the shared interner).
  std::vector<rs::store::InternedSet> sets(n);
  {
    rs::obs::Span span("jaccard/sets");
    span.set_items(n);
    rs::exec::parallel_for(pool, n, [&](std::size_t i) {
      sets[i] = interner->intern(options.set_kind == SetKind::kAllCertificates
                                     ? chosen[i]->all_fingerprints()
                                     : chosen[i]->tls_anchors());
    });
  }

  // Phase 3 (parallel): popcount pair loop over the same upper-triangle row
  // blocks; identical chunking and write pattern as the merge engine.
  {
    rs::obs::Span span("jaccard/pairs");
    rs::exec::parallel_for(pool, n, [&](std::size_t i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const double d = rs::store::jaccard_distance(sets[i], sets[j]);
        out.values[i * n + j] = d;
        out.values[j * n + i] = d;
      }
    });
  }
  note_matrix(matrix_span, n);
  return out;
}

}  // namespace rs::analysis
