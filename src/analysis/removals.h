// Root-removal extraction and removal-report auditing (§5.3).
//
// The paper cross-checked Mozilla's public "Removed CA Certificate Report"
// against the removals actually visible in certdata history and found 92
// removals missing from the report (mostly expirations and CA-requested
// removals).  This module reproduces that audit mechanically: extract every
// permanent disappearance of a TLS anchor from a provider history, then
// compare against a report's fingerprint list.
#pragma once

#include <vector>

#include "src/crypto/digest.h"
#include "src/store/snapshot.h"
#include "src/util/date.h"

namespace rs::analysis {

/// One observed removal: the root stopped being a TLS anchor at `date` and
/// never returned within the history.
struct MeasuredRemoval {
  rs::crypto::Sha256Digest root{};
  rs::util::Date date;  // first snapshot without the root
  /// The certificate had already expired when it was removed — the class
  /// of "routine" removal the paper found missing from Mozilla's report.
  bool expired_at_removal = false;
};

/// Extracts permanent TLS-anchor removals from a history.  Roots that are
/// removed and later re-added are not counted (their trust survived).
std::vector<MeasuredRemoval> measured_removals(
    const rs::store::ProviderHistory& history);

/// Result of auditing a removal report against measured removals.
struct ReportAudit {
  std::size_t measured = 0;   // removals visible in the history
  std::size_t reported = 0;   // entries in the report
  std::size_t covered = 0;    // measured removals the report contains
  std::size_t missing = 0;    // measured removals absent from the report
  std::size_t missing_expired = 0;  // ... of which expired at removal
  /// Report entries that do not correspond to any measured removal
  /// (e.g. purpose-only distrust the history cannot see).
  std::size_t unmatched_report_entries = 0;
};

ReportAudit audit_removal_report(
    const std::vector<MeasuredRemoval>& measured,
    const std::vector<rs::crypto::Sha256Digest>& reported);

}  // namespace rs::analysis
