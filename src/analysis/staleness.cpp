#include "src/analysis/staleness.h"

#include "src/obs/registry.h"
#include "src/obs/span.h"

namespace rs::analysis {

using rs::store::CertInterner;
using rs::store::FingerprintSet;
using rs::util::Date;

NssVersionIndex::NssVersionIndex(
    std::vector<Version> versions,
    std::shared_ptr<const rs::store::CertInterner> interner)
    : versions_(std::move(versions)), interner_(std::move(interner)) {
  if (interner_ != nullptr) {
    for (auto& v : versions_) v.tls_interned = interner_->intern(v.tls_anchors);
  }
}

const NssVersionIndex::Version* NssVersionIndex::current_at(Date when) const {
  const Version* best = nullptr;
  for (const auto& v : versions_) {
    if (v.date <= when) best = &v;
    else break;
  }
  return best;
}

const NssVersionIndex::Version* NssVersionIndex::closest_match(
    const FingerprintSet& anchors) const {
  if (interner_ == nullptr) return closest_match_merge(anchors);
  // Intern the query once, then every version comparison is a popcount
  // scan.  The cardinalities (and hence the distances and the argmin) are
  // exactly those of the merge scan below.
  const auto query = interner_->intern(anchors);
  const Version* best = nullptr;
  double best_dist = 2.0;
  for (const auto& v : versions_) {
    const double d = rs::store::jaccard_distance(query, v.tls_interned);
    if (d < best_dist) {  // strict: ties keep the earlier version
      best_dist = d;
      best = &v;
    }
  }
  return best;
}

const NssVersionIndex::Version* NssVersionIndex::closest_match_merge(
    const FingerprintSet& anchors) const {
  const Version* best = nullptr;
  double best_dist = 2.0;
  for (const auto& v : versions_) {
    const double d = anchors.jaccard_distance(v.tls_anchors);
    if (d < best_dist) {  // strict: ties keep the earlier version
      best_dist = d;
      best = &v;
    }
  }
  return best;
}

namespace {

std::vector<NssVersionIndex::Version> substantial_versions(
    const rs::store::ProviderHistory& nss) {
  std::vector<NssVersionIndex::Version> versions;
  FingerprintSet previous;
  bool first = true;
  for (const auto& snap : nss.snapshots()) {
    FingerprintSet tls = snap.tls_anchors();
    if (first || !(tls == previous)) {
      NssVersionIndex::Version v;
      v.index = versions.size() + 1;
      v.date = snap.date;
      v.label = snap.version;
      v.tls_anchors = tls;
      versions.push_back(std::move(v));
      previous = std::move(tls);
      first = false;
    }
  }
  return versions;
}

}  // namespace

NssVersionIndex build_version_index(
    const rs::store::ProviderHistory& nss,
    std::shared_ptr<const rs::store::CertInterner> interner) {
  rs::obs::Span span("staleness/version_index");
  if (interner == nullptr) {
    interner =
        std::make_shared<const CertInterner>(CertInterner::from_history(nss));
  }
  return NssVersionIndex(substantial_versions(nss), std::move(interner));
}

NssVersionIndex build_version_index_merge(
    const rs::store::ProviderHistory& nss) {
  return NssVersionIndex(substantial_versions(nss));
}

StalenessResult derivative_staleness(const rs::store::ProviderHistory& deriv,
                                     const NssVersionIndex& index,
                                     rs::exec::ThreadPool* pool) {
  rs::obs::Span stage_span("staleness/derivative");
  StalenessResult out;
  out.provider = deriv.provider();
  if (deriv.empty() || index.size() == 0) return out;
  stage_span.set_items(deriv.size());
  rs::obs::Registry::global()
      .counter("analysis.staleness_matches")
      .add(deriv.size());

  // Each snapshot matches against the read-only index independently;
  // per-snapshot slots keep the points in snapshot order.
  const auto& snaps = deriv.snapshots();
  std::vector<std::optional<StalenessPoint>> samples(snaps.size());
  rs::exec::parallel_for(pool, snaps.size(), [&](std::size_t k) {
    const auto& snap = snaps[k];
    const auto* matched = index.closest_match(snap.tls_anchors());
    const auto* current = index.current_at(snap.date);
    if (matched == nullptr || current == nullptr) return;
    StalenessPoint p;
    p.date = snap.date;
    p.matched_version = matched->index;
    p.current_version = current->index;
    p.versions_behind =
        matched->index >= current->index
            ? 0.0
            : static_cast<double>(current->index - matched->index);
    samples[k] = p;
  });

  out.always_stale = true;
  for (const auto& p : samples) {
    if (!p) continue;
    if (p->versions_behind == 0.0) out.always_stale = false;
    out.points.push_back(*p);
  }

  // Time-weighted integral (piecewise-constant between samples).
  if (out.points.size() == 1) {
    out.avg_versions_behind = out.points[0].versions_behind;
  } else if (out.points.size() > 1) {
    double integral = 0.0;
    double total_days = 0.0;
    for (std::size_t i = 0; i + 1 < out.points.size(); ++i) {
      const double span =
          static_cast<double>(out.points[i + 1].date - out.points[i].date);
      integral += out.points[i].versions_behind * span;
      total_days += span;
    }
    out.avg_versions_behind = total_days > 0 ? integral / total_days : 0.0;
  }
  return out;
}

}  // namespace rs::analysis
