#include "src/analysis/hygiene.h"

namespace rs::analysis {

HygieneMetrics hygiene_metrics(const rs::store::ProviderHistory& history) {
  HygieneMetrics out;
  out.provider = history.provider();
  if (history.empty()) return out;

  double size_sum = 0;
  double expired_sum = 0;
  bool md5_seen = false;
  bool weak_seen = false;
  for (const auto& snap : history.snapshots()) {
    size_sum += static_cast<double>(snap.size());
    expired_sum += static_cast<double>(snap.expired_count());

    const bool md5_now = snap.md5_signed_count() > 0;
    const bool weak_now = snap.weak_rsa_count() > 0;
    if (md5_seen && !md5_now && !out.md5_removed) {
      out.md5_removed = snap.date;
    }
    if (md5_now) {
      md5_seen = true;
      out.md5_removed.reset();  // reappeared: removal not final yet
    }
    if (weak_seen && !weak_now && !out.weak_rsa_removed) {
      out.weak_rsa_removed = snap.date;
    }
    if (weak_now) {
      weak_seen = true;
      out.weak_rsa_removed.reset();
    }
  }
  const double n = static_cast<double>(history.size());
  out.avg_size = size_sum / n;
  out.avg_expired = expired_sum / n;
  out.md5_still_present = history.back().md5_signed_count() > 0;
  out.weak_rsa_still_present = history.back().weak_rsa_count() > 0;
  return out;
}

}  // namespace rs::analysis
