#include "src/analysis/churn.h"

#include <algorithm>
#include <cmath>

#include "src/store/fingerprint_set.h"

namespace rs::analysis {

ChurnSeries churn_series(const rs::store::ProviderHistory& history) {
  ChurnSeries out;
  out.provider = history.provider();
  if (history.empty()) return out;

  rs::store::FingerprintSet previous;
  bool first = true;
  double fraction_sum = 0;
  for (const auto& snap : history.snapshots()) {
    const auto current = snap.all_fingerprints();
    ChurnPoint p;
    p.date = snap.date;
    p.version = snap.version;
    if (!first) {
      p.added = current.difference(previous).size();
      p.removed = previous.difference(current).size();
      const std::size_t uni = current.union_size(previous);
      p.change_fraction =
          uni == 0 ? 0.0
                   : static_cast<double>(p.added + p.removed) /
                         static_cast<double>(uni);
    }
    fraction_sum += p.change_fraction;
    out.points.push_back(std::move(p));
    previous = current;
    first = false;
  }
  out.mean_change_fraction =
      fraction_sum / static_cast<double>(out.points.size());
  return out;
}

std::vector<ChurnOutlier> find_outliers(const std::vector<ChurnSeries>& series,
                                        double sigmas,
                                        std::size_t min_change) {
  std::vector<ChurnOutlier> out;
  for (const auto& s : series) {
    if (s.points.size() < 3) continue;
    // Provider-local mean/stddev of the change fraction.
    double mean = 0;
    for (const auto& p : s.points) mean += p.change_fraction;
    mean /= static_cast<double>(s.points.size());
    double var = 0;
    for (const auto& p : s.points) {
      var += (p.change_fraction - mean) * (p.change_fraction - mean);
    }
    var /= static_cast<double>(s.points.size());
    const double sd = std::sqrt(var);
    if (sd <= 0) continue;

    for (const auto& p : s.points) {
      if (p.total_change() < min_change) continue;
      const double score = (p.change_fraction - mean) / sd;
      if (score >= sigmas) {
        out.push_back(ChurnOutlier{s.provider, p, score});
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ChurnOutlier& a, const ChurnOutlier& b) {
              return a.score > b.score;
            });
  return out;
}

}  // namespace rs::analysis
