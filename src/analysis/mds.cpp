#include "src/analysis/mds.h"

#include <cmath>

#include "src/crypto/prng.h"
#include "src/obs/registry.h"
#include "src/obs/span.h"

namespace rs::analysis {

namespace {

double point_distance(const Point2& a, const Point2& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

// Sum of squared upper-triangle distances (the normalized-stress
// denominator).  Per-row partials combined in row order: deterministic for
// any worker count.
double pairwise_squared_sum(const DistanceMatrix& dist,
                            rs::exec::ThreadPool* pool) {
  const std::size_t n = dist.size();
  std::vector<double> row(n, 0.0);
  rs::exec::parallel_for(pool, n, [&](std::size_t i) {
    double acc = 0.0;
    for (std::size_t j = i + 1; j < n; ++j) {
      acc += dist.at(i, j) * dist.at(i, j);
    }
    row[i] = acc;
  });
  double total = 0.0;
  for (double v : row) total += v;
  return total;
}

// Power iteration for the dominant eigenpair of a symmetric matrix `m`,
// deflating `prior` eigenpairs (vectors stored column-wise in `evecs`).
void power_iteration(const std::vector<double>& m, std::size_t n,
                     const std::vector<std::vector<double>>& prior_vecs,
                     const std::vector<double>& prior_vals,
                     std::vector<double>& evec, double& eval) {
  evec.assign(n, 0.0);
  // Deterministic start, varied per deflation round; otherwise a degenerate
  // (repeated) eigenvalue would leave later rounds starting parallel to the
  // eigenvector already extracted and converge to zero.
  const std::size_t round = prior_vecs.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t mix = (i + 1) * 2654435761u + round * 40503u;
    evec[i] = 1.0 + 0.37 * static_cast<double>(mix % 97) / 97.0 +
              (round > 0 ? 0.61 * static_cast<double>((mix / 97) % 89) / 89.0
                         : 0.0);
  }
  // Orthogonalize the start against prior eigenvectors so the deflated
  // component is non-trivial even in degenerate eigenspaces.
  for (const auto& prior : prior_vecs) {
    double dot = 0.0;
    for (std::size_t i = 0; i < n; ++i) dot += prior[i] * evec[i];
    for (std::size_t i = 0; i < n; ++i) evec[i] -= dot * prior[i];
  }
  std::vector<double> next(n);
  eval = 0.0;
  for (int iter = 0; iter < 500; ++iter) {
    // next = M * evec, with deflation of prior eigenpairs.
    for (std::size_t i = 0; i < n; ++i) {
      double acc = 0.0;
      for (std::size_t j = 0; j < n; ++j) acc += m[i * n + j] * evec[j];
      next[i] = acc;
    }
    for (std::size_t k = 0; k < prior_vecs.size(); ++k) {
      double dot = 0.0;
      for (std::size_t i = 0; i < n; ++i) dot += prior_vecs[k][i] * evec[i];
      for (std::size_t i = 0; i < n; ++i) {
        next[i] -= prior_vals[k] * prior_vecs[k][i] * dot;
      }
    }
    double norm = 0.0;
    for (double v : next) norm += v * v;
    norm = std::sqrt(norm);
    if (norm < 1e-15) break;
    double delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double nv = next[i] / norm;
      delta += std::abs(nv - evec[i]);
      evec[i] = nv;
    }
    eval = norm;
    if (delta < 1e-12) break;
  }
  // Rayleigh quotient for a signed eigenvalue.
  double rq = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < n; ++j) acc += m[i * n + j] * evec[j];
    rq += evec[i] * acc;
  }
  eval = rq;
}

}  // namespace

double embedding_stress(const DistanceMatrix& dist,
                        const std::vector<Point2>& points,
                        rs::exec::ThreadPool* pool) {
  const std::size_t n = dist.size();
  std::vector<double> row(n, 0.0);
  rs::exec::parallel_for(pool, n, [&](std::size_t i) {
    double acc = 0.0;
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d = point_distance(points[i], points[j]);
      const double delta = dist.at(i, j);
      acc += (d - delta) * (d - delta);
    }
    row[i] = acc;
  });
  // Combine per-row partials in row order so the floating-point result does
  // not depend on scheduling or worker count.
  double stress = 0.0;
  for (double v : row) stress += v;
  return stress;
}

MdsResult classical_mds(const DistanceMatrix& dist) {
  const std::size_t n = dist.size();
  MdsResult out;
  out.points.assign(n, Point2{});
  if (n < 2) return out;

  // B = -1/2 J D^2 J  (double centering).
  std::vector<double> b(n * n);
  std::vector<double> row_mean(n, 0.0);
  double grand_mean = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double d2 = dist.at(i, j) * dist.at(i, j);
      b[i * n + j] = d2;
      row_mean[i] += d2;
    }
    row_mean[i] /= static_cast<double>(n);
    grand_mean += row_mean[i];
  }
  grand_mean /= static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      b[i * n + j] =
          -0.5 * (b[i * n + j] - row_mean[i] - row_mean[j] + grand_mean);
    }
  }

  std::vector<std::vector<double>> evecs;
  std::vector<double> evals;
  for (int k = 0; k < 2; ++k) {
    std::vector<double> v;
    double lambda = 0.0;
    power_iteration(b, n, evecs, evals, v, lambda);
    evecs.push_back(std::move(v));
    evals.push_back(lambda);
  }
  for (std::size_t i = 0; i < n; ++i) {
    out.points[i].x = evals[0] > 0 ? evecs[0][i] * std::sqrt(evals[0]) : 0.0;
    out.points[i].y = evals[1] > 0 ? evecs[1][i] * std::sqrt(evals[1]) : 0.0;
  }
  out.stress = embedding_stress(dist, out.points);
  const double denom = pairwise_squared_sum(dist, nullptr);
  out.normalized_stress = denom > 0 ? out.stress / denom : 0.0;
  out.iterations = 1;
  return out;
}

MdsResult smacof_mds(const DistanceMatrix& dist, const MdsOptions& options,
                     rs::exec::ThreadPool* pool) {
  rs::obs::Span span("mds/smacof");
  const std::size_t n = dist.size();
  MdsResult out;
  if (n < 2) {
    out.points.assign(n, Point2{});
    return out;
  }

  if (options.random_init) {
    out.points.assign(n, Point2{});
    rs::crypto::Prng rng(options.seed);
    for (auto& p : out.points) {
      p.x = rng.uniform01() - 0.5;
      p.y = rng.uniform01() - 0.5;
    }
  } else {
    out.points = classical_mds(dist).points;
  }

  double prev_stress = embedding_stress(dist, out.points, pool);
  std::vector<Point2> next(n);
  std::size_t iter = 0;
  for (; iter < options.max_iterations; ++iter) {
    // Guttman transform with unit weights:
    //   x_i' = (1/n) * sum_{j != i} (delta_ij / d_ij) * (x_i - x_j)
    // (row i of n^-1 B(X) X, where B(X)_ij = -delta_ij/d_ij off-diagonal
    // and the diagonal makes rows sum to zero).  Each row only reads the
    // previous iterate and writes its own slot, so rows run in parallel.
    rs::exec::parallel_for(pool, n, [&](std::size_t i) {
      double sx = 0.0, sy = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const double d = point_distance(out.points[i], out.points[j]);
        const double w = d > 1e-12 ? dist.at(i, j) / d : 0.0;
        sx += w * (out.points[i].x - out.points[j].x);
        sy += w * (out.points[i].y - out.points[j].y);
      }
      next[i].x = sx / static_cast<double>(n);
      next[i].y = sy / static_cast<double>(n);
    });
    std::swap(out.points, next);
    const double stress = embedding_stress(dist, out.points, pool);
    if (prev_stress - stress < options.tolerance * prev_stress) {
      prev_stress = std::min(stress, prev_stress);
      break;
    }
    prev_stress = stress;
  }
  out.iterations = iter + 1;
  out.stress = prev_stress;
  const double denom = pairwise_squared_sum(dist, pool);
  out.normalized_stress = denom > 0 ? out.stress / denom : 0.0;
  span.set_items(out.iterations);
  rs::obs::Registry::global()
      .counter("analysis.smacof_iterations")
      .add(out.iterations);
  return out;
}

}  // namespace rs::analysis
