// Snapshot churn and ordination outliers (§4).
//
// The paper's Figure 1 outliers (Apple 2011-10 / 2014-02 / 2018-09, Java
// 2018-08) are snapshots preceded or followed by unusually large root-store
// changes.  This module measures exactly that: per-snapshot added/removed
// counts relative to the previous snapshot, the change fraction, and a
// ranked outlier list.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/store/snapshot.h"
#include "src/util/date.h"

namespace rs::analysis {

/// Change between one snapshot and its predecessor.
struct ChurnPoint {
  rs::util::Date date;
  std::string version;
  std::size_t added = 0;
  std::size_t removed = 0;
  /// (added + removed) / union-size with the predecessor; 0 for the first
  /// snapshot.
  double change_fraction = 0;

  std::size_t total_change() const noexcept { return added + removed; }
};

/// Per-provider churn series.
struct ChurnSeries {
  std::string provider;
  std::vector<ChurnPoint> points;
  double mean_change_fraction = 0;
};

/// Computes churn over a provider history (all certificates present, the
/// same set Figure 1 clusters on).
ChurnSeries churn_series(const rs::store::ProviderHistory& history);

/// An outlier: a snapshot whose change fraction exceeds
/// mean + `sigmas` * stddev of its provider's series (and is >= min_change
/// roots in absolute terms, to avoid flagging tiny stores).
struct ChurnOutlier {
  std::string provider;
  ChurnPoint point;
  double score = 0;  // standard deviations above the provider mean
};

/// Ranked outliers (largest score first) across the given series.
std::vector<ChurnOutlier> find_outliers(const std::vector<ChurnSeries>& series,
                                        double sigmas = 2.0,
                                        std::size_t min_change = 8);

}  // namespace rs::analysis
