// Derivative difference categorization (Figure 4 / §6.2).
//
// For each derivative snapshot, the roots added to and removed from its
// closest-matching NSS version are classified by *why* they differ:
// non-NSS roots, email-only roots granted TLS trust, re-added roots, and
// partial-distrust fallout.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "src/analysis/staleness.h"
#include "src/store/snapshot.h"
#include "src/util/date.h"

namespace rs::analysis {

/// Why a derivative carries a root its matched NSS version does not.
enum class AddCategory : std::size_t {
  /// Never present in any NSS snapshot (Debian-local CAs, CAcert, ...).
  kNonNssRoot = 0,
  /// Present in NSS but never TLS-trusted there (email-signing conflation).
  kEmailOnlyRoot = 1,
  /// TLS-trusted by NSS in the past but not in the matched version
  /// (re-added after an NSS removal, e.g. AmazonLinux's 1024-bit roots).
  kReAddedRoot = 2,
  /// Anything else (e.g. roots newer than the matched version).
  kOther = 3,
};
inline constexpr std::size_t kAddCategoryCount = 4;
const char* to_string(AddCategory c) noexcept;

/// Why a derivative lacks a root its matched NSS version has.
enum class RemoveCategory : std::size_t {
  /// The matched NSS entry carries a TLS distrust-after cutoff the
  /// derivative format cannot express (Symantec-distrust fallout).
  kPartialDistrustFallout = 0,
  /// Bespoke removal (proactive security edits, manual cleanups).
  kCustomRemoval = 1,
};
inline constexpr std::size_t kRemoveCategoryCount = 2;
const char* to_string(RemoveCategory c) noexcept;

/// One derivative snapshot's diff against its matched NSS version.
struct SnapshotDiff {
  rs::util::Date date;
  std::size_t matched_version = 0;
  std::array<std::size_t, kAddCategoryCount> adds{};
  std::array<std::size_t, kRemoveCategoryCount> removes{};

  std::size_t added_total() const noexcept;
  std::size_t removed_total() const noexcept;
};

/// Figure 4 series for one derivative.
struct DerivativeDiffSeries {
  std::string provider;
  std::vector<SnapshotDiff> points;
  /// True if any snapshot deviates from its matched NSS version.
  bool ever_deviates = false;
};

/// Computes the series.  `nss` supplies the ever-present / ever-TLS sets
/// used for categorization; `index` the substantial versions to match.
/// Snapshots diff independently, so `pool` parallelizes the per-snapshot
/// matching and categorization; points stay in snapshot order and the
/// result is identical for any worker count.
DerivativeDiffSeries derivative_diffs(const rs::store::ProviderHistory& deriv,
                                      const rs::store::ProviderHistory& nss,
                                      const NssVersionIndex& index,
                                      rs::exec::ThreadPool* pool = nullptr);

}  // namespace rs::analysis
