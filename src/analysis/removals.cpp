#include "src/analysis/removals.h"

#include <map>

#include "src/store/fingerprint_set.h"

namespace rs::analysis {

std::vector<MeasuredRemoval> measured_removals(
    const rs::store::ProviderHistory& history) {
  std::vector<MeasuredRemoval> out;
  if (history.size() < 2) return out;

  // Last snapshot index in which each root is a TLS anchor, plus whether it
  // was expired then.
  struct LastSeen {
    std::size_t index = 0;
    bool expired = false;
  };
  std::map<rs::crypto::Sha256Digest, LastSeen> last_seen;
  for (std::size_t i = 0; i < history.size(); ++i) {
    const auto& snap = history.snapshots()[i];
    for (const auto& e : snap.entries) {
      if (!e.is_tls_anchor()) continue;
      last_seen[e.certificate->sha256()] =
          LastSeen{i, e.certificate->is_expired_at(snap.date)};
    }
  }

  const std::size_t last_index = history.size() - 1;
  for (const auto& [fp, seen] : last_seen) {
    if (seen.index == last_index) continue;  // still trusted at the end
    MeasuredRemoval r;
    r.root = fp;
    r.date = history.snapshots()[seen.index + 1].date;
    r.expired_at_removal = seen.expired;
    out.push_back(r);
  }
  return out;
}

ReportAudit audit_removal_report(
    const std::vector<MeasuredRemoval>& measured,
    const std::vector<rs::crypto::Sha256Digest>& reported) {
  ReportAudit audit;
  audit.measured = measured.size();
  audit.reported = reported.size();

  rs::store::FingerprintSet report_set(
      std::vector<rs::crypto::Sha256Digest>(reported.begin(), reported.end()));
  std::vector<rs::crypto::Sha256Digest> measured_roots;
  measured_roots.reserve(measured.size());
  for (const auto& r : measured) measured_roots.push_back(r.root);
  const rs::store::FingerprintSet measured_set(std::move(measured_roots));
  for (const auto& r : measured) {
    if (report_set.contains(r.root)) {
      ++audit.covered;
    } else {
      ++audit.missing;
      if (r.expired_at_removal) ++audit.missing_expired;
    }
  }
  audit.unmatched_report_entries =
      report_set.difference(measured_set).size();
  return audit;
}

}  // namespace rs::analysis
