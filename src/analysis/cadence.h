// Update cadence (§6.1 "Update Dynamics").
//
// Beyond *how stale* a derivative's content is (Figure 3), the paper asks
// how often providers ship updates at all, and notes that "some derivative
// version updates ignore potential NSS updates".  This module measures it:
// snapshot intervals, the fraction of snapshots that changed nothing
// (no-op releases), and substantial updates per year.
#pragma once

#include <string>
#include <vector>

#include "src/store/snapshot.h"

namespace rs::analysis {

/// Cadence statistics for one provider history.
struct UpdateCadence {
  std::string provider;
  std::size_t snapshots = 0;
  /// Snapshots whose certificate set differs from their predecessor.
  std::size_t substantial_updates = 0;
  /// Snapshots identical to their predecessor (releases that ignored
  /// upstream changes, or no upstream change existed).
  std::size_t noop_updates = 0;
  /// Days between consecutive snapshots.
  double mean_interval_days = 0;
  double median_interval_days = 0;
  /// Days between consecutive *substantial* updates.
  double mean_substantial_interval_days = 0;
  /// Substantial updates per year of covered history.
  double substantial_per_year = 0;
};

UpdateCadence update_cadence(const rs::store::ProviderHistory& history);

}  // namespace rs::analysis
