// Program-exclusive root analysis (Table 6 / §5.2).
//
// A root is exclusive to a program if the program's *latest* snapshot
// TLS-trusts it and no other independent program has *ever* TLS-trusted it.
#pragma once

#include <string>
#include <vector>

#include "src/crypto/digest.h"
#include "src/store/database.h"
#include "src/store/interner.h"

namespace rs::analysis {

/// One program's exclusive roots.
struct ExclusiveSet {
  std::string program;
  std::vector<rs::crypto::Sha256Digest> roots;
};

/// Computes exclusive roots among `programs` (typically the four
/// independent programs).  Providers absent from the database are skipped.
/// With an `interner` (EcosystemStudy passes its database-wide one), the
/// per-program "ever trusted" sets accumulate as bitsets and membership
/// checks are bit probes; results are identical either way.
std::vector<ExclusiveSet> exclusive_roots(
    const rs::store::StoreDatabase& db,
    const std::vector<std::string>& programs,
    const rs::store::CertInterner* interner = nullptr);

}  // namespace rs::analysis
