#include "src/analysis/exclusive.h"

#include "src/store/fingerprint_set.h"

namespace rs::analysis {

std::vector<ExclusiveSet> exclusive_roots(
    const rs::store::StoreDatabase& db,
    const std::vector<std::string>& programs) {
  // Ever-TLS-trusted set per program.
  struct ProgramSets {
    std::string name;
    rs::store::FingerprintSet ever;
    rs::store::FingerprintSet latest;
  };
  std::vector<ProgramSets> sets;
  for (const auto& name : programs) {
    const auto* history = db.find(name);
    if (history == nullptr || history->empty()) continue;
    ProgramSets ps;
    ps.name = name;
    ps.ever = db.tls_roots_ever(name);
    ps.latest = history->back().tls_anchors();
    sets.push_back(std::move(ps));
  }

  std::vector<ExclusiveSet> out;
  for (const auto& ps : sets) {
    ExclusiveSet ex;
    ex.program = ps.name;
    for (const auto& fp : ps.latest.items()) {
      bool elsewhere = false;
      for (const auto& other : sets) {
        if (other.name == ps.name) continue;
        if (other.ever.contains(fp)) {
          elsewhere = true;
          break;
        }
      }
      if (!elsewhere) ex.roots.push_back(fp);
    }
    out.push_back(std::move(ex));
  }
  return out;
}

}  // namespace rs::analysis
