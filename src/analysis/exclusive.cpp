#include "src/analysis/exclusive.h"

#include <vector>

#include "src/landscape/presence.h"
#include "src/store/fingerprint_set.h"
#include "src/store/id_set.h"

namespace rs::analysis {

std::vector<ExclusiveSet> exclusive_roots(
    const rs::store::StoreDatabase& db,
    const std::vector<std::string>& programs,
    const rs::store::CertInterner* interner) {
  // Candidates: each program's latest TLS anchors.  Held: each program's
  // ever-TLS-trusted set.  The landscape presence-vector primitive then
  // answers "latest \ union of the others' ever" for every program in one
  // prefix/suffix union pass (docs/LANDSCAPE.md).
  struct ProgramSets {
    std::string name;
    rs::store::FingerprintSet ever;
    rs::store::FingerprintSet latest;
  };
  std::vector<ProgramSets> sets;
  for (const auto& name : programs) {
    const auto* history = db.find(name);
    if (history == nullptr || history->empty()) continue;
    ProgramSets ps;
    ps.name = name;
    ps.ever = db.tls_roots_ever(name);
    ps.latest = history->back().tls_anchors();
    sets.push_back(std::move(ps));
  }

  // The primitive needs every digest representable as a dense ID.  The
  // study passes its database-wide interner (always complete); callers
  // with no interner — or a partial one — get a local universe built from
  // exactly the sets involved, so results are identical either way.
  rs::store::CertInterner local;
  const rs::store::CertInterner* universe = interner;
  const auto fully_mapped = [&](const rs::store::FingerprintSet& fps) {
    return interner != nullptr && interner->intern(fps).unmapped.empty();
  };
  bool complete = interner != nullptr;
  for (const auto& ps : sets) {
    if (!complete) break;
    complete = fully_mapped(ps.ever) && fully_mapped(ps.latest);
  }
  if (!complete) {
    std::vector<rs::crypto::Sha256Digest> digests;
    for (const auto& ps : sets) {
      digests.insert(digests.end(), ps.ever.items().begin(),
                     ps.ever.items().end());
      digests.insert(digests.end(), ps.latest.items().begin(),
                     ps.latest.items().end());
    }
    local = rs::store::CertInterner(std::move(digests));
    universe = &local;
  }

  std::vector<rs::store::IdSet> candidates;
  std::vector<rs::store::IdSet> held;
  candidates.reserve(sets.size());
  held.reserve(sets.size());
  for (const auto& ps : sets) {
    candidates.push_back(universe->intern(ps.latest).ids);
    held.push_back(universe->intern(ps.ever).ids);
  }
  std::vector<const rs::store::IdSet*> candidate_views;
  std::vector<const rs::store::IdSet*> held_views;
  for (std::size_t i = 0; i < sets.size(); ++i) {
    candidate_views.push_back(&candidates[i]);
    held_views.push_back(&held[i]);
  }
  const auto exclusive =
      rs::landscape::exclusive_sets(candidate_views, held_views);

  std::vector<ExclusiveSet> out;
  out.reserve(sets.size());
  for (std::size_t i = 0; i < sets.size(); ++i) {
    ExclusiveSet ex;
    ex.program = sets[i].name;
    // IdSet::ids() ascends in sorted-digest order, matching the sorted
    // FingerprintSet iteration the previous implementation used — the
    // golden Table 6 bytes are pinned on it.
    ex.roots = universe->materialize(exclusive[i]).items();
    out.push_back(std::move(ex));
  }
  return out;
}

}  // namespace rs::analysis
