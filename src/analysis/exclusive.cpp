#include "src/analysis/exclusive.h"

#include <optional>

#include "src/store/fingerprint_set.h"
#include "src/store/id_set.h"

namespace rs::analysis {

std::vector<ExclusiveSet> exclusive_roots(
    const rs::store::StoreDatabase& db,
    const std::vector<std::string>& programs,
    const rs::store::CertInterner* interner) {
  // Ever-TLS-trusted set per program.  With an interner the "ever" sets
  // are bitsets accumulated by OR (membership below is a bit probe);
  // otherwise they stay merge-based FingerprintSets.
  struct ProgramSets {
    std::string name;
    rs::store::FingerprintSet ever;
    rs::store::IdSet ever_ids;
    rs::store::FingerprintSet latest;
  };
  std::vector<ProgramSets> sets;
  for (const auto& name : programs) {
    const auto* history = db.find(name);
    if (history == nullptr || history->empty()) continue;
    ProgramSets ps;
    ps.name = name;
    ps.ever = db.tls_roots_ever(name);
    if (interner != nullptr) ps.ever_ids = interner->intern(ps.ever).ids;
    ps.latest = history->back().tls_anchors();
    sets.push_back(std::move(ps));
  }

  std::vector<ExclusiveSet> out;
  for (const auto& ps : sets) {
    ExclusiveSet ex;
    ex.program = ps.name;
    for (const auto& fp : ps.latest.items()) {
      // Resolve the digest to its dense ID once per root, not per program.
      std::optional<std::uint32_t> id;
      if (interner != nullptr) id = interner->id_of(fp);
      bool elsewhere = false;
      for (const auto& other : sets) {
        if (other.name == ps.name) continue;
        // An unmapped digest (partial interner) falls back to the exact
        // merge-based membership check.
        const bool held = id ? other.ever_ids.contains(*id)
                             : other.ever.contains(fp);
        if (held) {
          elsewhere = true;
          break;
        }
      }
      if (!elsewhere) ex.roots.push_back(fp);
    }
    out.push_back(std::move(ex));
  }
  return out;
}

}  // namespace rs::analysis
