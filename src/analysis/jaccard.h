// Pairwise Jaccard distances across root-store snapshots (§4).
//
// The paper clusters providers by the Jaccard distance between their
// snapshots' certificate sets.  This module flattens a StoreDatabase into a
// labelled snapshot list and computes the symmetric distance matrix, either
// over all certificates present or over TLS anchors only (trust-aware
// variant; see DESIGN.md ablations).
//
// Matrix construction runs in three phases: snapshot selection (serial),
// per-snapshot fingerprint-set materialization (cached once per snapshot,
// parallelizable), and the O(n^2) upper-triangle pair loop (parallel row
// blocks).  Results are bitwise-identical for any worker count; see
// docs/PARALLELISM.md.
#pragma once

#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

#include "src/exec/thread_pool.h"
#include "src/store/database.h"
#include "src/store/interner.h"
#include "src/util/date.h"

namespace rs::analysis {

/// A reference to one snapshot in the flattened matrix order.
struct SnapshotRef {
  std::string provider;
  rs::util::Date date;
  std::string version;
  std::size_t provider_index = 0;  // index within the provider's history
};

/// Which certificate set the distance is computed over.
enum class SetKind {
  kAllCertificates,  // paper's choice: every root present
  kTlsAnchors,       // trust-aware ablation
};

/// How the pairwise set algebra is executed.  Both produce bit-identical
/// matrices (the interned engine computes the same exact integer
/// cardinalities via popcount); kSortedMerge remains for equivalence tests
/// and the BENCH_intern.json comparison.
enum class SetAlgebra {
  kInterned,     // dense-ID bitsets, popcount pair loop (default)
  kSortedMerge,  // legacy linear merge over sorted 32-byte digests
};

/// A symmetric distance matrix with its row labels.
struct DistanceMatrix {
  std::vector<SnapshotRef> labels;
  /// Row-major n*n distances in [0, 1].
  std::vector<double> values;

  std::size_t size() const noexcept { return labels.size(); }
  double at(std::size_t i, std::size_t j) const {
    assert(i < labels.size() && j < labels.size() &&
           "DistanceMatrix::at index out of range");
    return values[i * labels.size() + j];
  }
};

/// Options for matrix construction.
struct JaccardOptions {
  SetKind set_kind = SetKind::kAllCertificates;
  /// Only snapshots dated in [min_date, max_date] are included (the paper's
  /// Figure 1 restricts to 2011-2021).
  std::optional<rs::util::Date> min_date;
  std::optional<rs::util::Date> max_date;
  /// Keep at most this many snapshots per provider (uniform subsample, most
  /// recent kept); 0 = no limit.  Controls MDS cost.
  std::size_t max_per_provider = 0;
  /// Pair-loop engine; see SetAlgebra.
  SetAlgebra algebra = SetAlgebra::kInterned;
};

/// Builds the pairwise Jaccard distance matrix over `db`'s snapshots.
/// `pool` parallelizes set materialization and the pair loop; null (or a
/// zero-worker pool) computes inline serially with identical results.
/// `interner` supplies a prebuilt certificate universe for the interned
/// engine (EcosystemStudy builds one per database); when null the engine
/// interns `db` itself.  Matrices are bit-identical across engines,
/// interners, and worker counts.
DistanceMatrix jaccard_matrix(const rs::store::StoreDatabase& db,
                              const JaccardOptions& options = {},
                              rs::exec::ThreadPool* pool = nullptr,
                              const rs::store::CertInterner* interner = nullptr);

}  // namespace rs::analysis
