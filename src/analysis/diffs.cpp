#include "src/analysis/diffs.h"

#include <map>
#include <optional>

#include "src/obs/registry.h"
#include "src/obs/span.h"
#include "src/store/interner.h"

namespace rs::analysis {

using rs::crypto::Sha256Digest;
using rs::store::FingerprintSet;

const char* to_string(AddCategory c) noexcept {
  switch (c) {
    case AddCategory::kNonNssRoot:
      return "non-NSS root";
    case AddCategory::kEmailOnlyRoot:
      return "email-only root";
    case AddCategory::kReAddedRoot:
      return "re-added root";
    case AddCategory::kOther:
      return "other";
  }
  return "?";
}

const char* to_string(RemoveCategory c) noexcept {
  switch (c) {
    case RemoveCategory::kPartialDistrustFallout:
      return "partial-distrust fallout";
    case RemoveCategory::kCustomRemoval:
      return "custom removal";
  }
  return "?";
}

std::size_t SnapshotDiff::added_total() const noexcept {
  std::size_t n = 0;
  for (auto v : adds) n += v;
  return n;
}
std::size_t SnapshotDiff::removed_total() const noexcept {
  std::size_t n = 0;
  for (auto v : removes) n += v;
  return n;
}

namespace {

// "Ever present in NSS" membership, accumulated either as an interned
// bitset (OR per snapshot, O(words)) or as a legacy FingerprintSet union.
// Digests outside the interner universe fall back to a sorted extras set,
// so membership answers are exact for any interner.
class EverSet {
 public:
  void accumulate(const FingerprintSet& fps,
                  const rs::store::CertInterner* interner) {
    if (interner == nullptr) {
      merged_ = merged_.set_union(fps);
      return;
    }
    auto interned = interner->intern(fps);
    ids_ |= interned.ids;
    extra_prints_.insert(extra_prints_.end(), interned.unmapped.begin(),
                         interned.unmapped.end());
  }

  void seal() { extras_ = FingerprintSet(std::move(extra_prints_)); }

  bool contains(const Sha256Digest& fp,
                const rs::store::CertInterner* interner) const {
    if (interner == nullptr) return merged_.contains(fp);
    if (const auto id = interner->id_of(fp)) return ids_.contains(*id);
    return extras_.contains(fp);
  }

 private:
  rs::store::IdSet ids_;
  std::vector<Sha256Digest> extra_prints_;
  FingerprintSet extras_;
  FingerprintSet merged_;
};

}  // namespace

DerivativeDiffSeries derivative_diffs(const rs::store::ProviderHistory& deriv,
                                      const rs::store::ProviderHistory& nss,
                                      const NssVersionIndex& index,
                                      rs::exec::ThreadPool* pool) {
  rs::obs::Span span("diffs/derivative");
  DerivativeDiffSeries out;
  out.provider = deriv.provider();

  // NSS-ever sets and first-TLS dates, for categorization (serial: each
  // step folds into the previous union).  Everything below only reads them.
  const rs::store::CertInterner* interner = index.interner();
  EverSet nss_ever_any;
  EverSet nss_ever_tls;
  std::map<Sha256Digest, rs::util::Date> first_tls_date;
  for (const auto& snap : nss.snapshots()) {
    nss_ever_any.accumulate(snap.all_fingerprints(), interner);
    const auto tls = snap.tls_anchors();
    nss_ever_tls.accumulate(tls, interner);
    for (const auto& fp : tls.items()) {
      first_tls_date.emplace(fp, snap.date);
    }
  }
  nss_ever_any.seal();
  nss_ever_tls.seal();

  // Each derivative snapshot diffs against the shared read-only index
  // independently; results land in per-snapshot slots and are collected in
  // snapshot order afterwards.
  const auto& snaps = deriv.snapshots();
  std::vector<std::optional<SnapshotDiff>> results(snaps.size());
  rs::exec::parallel_for(pool, snaps.size(), [&](std::size_t k) {
    const auto& snap = snaps[k];
    const auto deriv_tls = snap.tls_anchors();
    const auto* matched = index.closest_match(deriv_tls);
    if (matched == nullptr) return;

    SnapshotDiff diff;
    diff.date = snap.date;
    diff.matched_version = matched->index;

    FingerprintSet added;
    FingerprintSet removed;
    if (interner != nullptr) {
      // Bitwise ANDNOT on dense IDs; materializes the same sorted digests
      // as the merge-based difference below.
      const auto interned_tls = interner->intern(deriv_tls);
      added = rs::store::set_difference(interned_tls, matched->tls_interned,
                                        *interner);
      removed = rs::store::set_difference(matched->tls_interned, interned_tls,
                                          *interner);
    } else {
      added = deriv_tls.difference(matched->tls_anchors);
      removed = matched->tls_anchors.difference(deriv_tls);
    }

    for (const auto& fp : added.items()) {
      AddCategory cat;
      if (!nss_ever_any.contains(fp, interner)) {
        cat = AddCategory::kNonNssRoot;
      } else if (!nss_ever_tls.contains(fp, interner)) {
        cat = AddCategory::kEmailOnlyRoot;
      } else {
        const auto it = first_tls_date.find(fp);
        cat = (it != first_tls_date.end() && it->second <= matched->date)
                  ? AddCategory::kReAddedRoot
                  : AddCategory::kOther;
      }
      ++diff.adds[static_cast<std::size_t>(cat)];
    }

    // Which matched-version entries carry partial distrust?
    // Find the NSS snapshot for this version to inspect entry trust bits.
    const rs::store::Snapshot* version_snap = nullptr;
    for (const auto& s : nss.snapshots()) {
      if (s.date == matched->date) {
        version_snap = &s;
        break;
      }
    }
    for (const auto& fp : removed.items()) {
      RemoveCategory cat = RemoveCategory::kCustomRemoval;
      if (version_snap != nullptr) {
        if (const auto* entry = version_snap->find(fp)) {
          if (entry->is_partially_distrusted_tls()) {
            cat = RemoveCategory::kPartialDistrustFallout;
          }
        }
      }
      ++diff.removes[static_cast<std::size_t>(cat)];
    }

    results[k] = diff;
  });

  for (const auto& diff : results) {
    if (!diff) continue;
    if (diff->added_total() + diff->removed_total() > 0) {
      out.ever_deviates = true;
    }
    out.points.push_back(*diff);
  }
  span.set_items(out.points.size());
  rs::obs::Registry::global()
      .counter("analysis.diff_points")
      .add(out.points.size());
  return out;
}

}  // namespace rs::analysis
