#include "src/analysis/diffs.h"

#include <map>
#include <optional>

namespace rs::analysis {

using rs::crypto::Sha256Digest;
using rs::store::FingerprintSet;

const char* to_string(AddCategory c) noexcept {
  switch (c) {
    case AddCategory::kNonNssRoot:
      return "non-NSS root";
    case AddCategory::kEmailOnlyRoot:
      return "email-only root";
    case AddCategory::kReAddedRoot:
      return "re-added root";
    case AddCategory::kOther:
      return "other";
  }
  return "?";
}

const char* to_string(RemoveCategory c) noexcept {
  switch (c) {
    case RemoveCategory::kPartialDistrustFallout:
      return "partial-distrust fallout";
    case RemoveCategory::kCustomRemoval:
      return "custom removal";
  }
  return "?";
}

std::size_t SnapshotDiff::added_total() const noexcept {
  std::size_t n = 0;
  for (auto v : adds) n += v;
  return n;
}
std::size_t SnapshotDiff::removed_total() const noexcept {
  std::size_t n = 0;
  for (auto v : removes) n += v;
  return n;
}

DerivativeDiffSeries derivative_diffs(const rs::store::ProviderHistory& deriv,
                                      const rs::store::ProviderHistory& nss,
                                      const NssVersionIndex& index,
                                      rs::exec::ThreadPool* pool) {
  DerivativeDiffSeries out;
  out.provider = deriv.provider();

  // NSS-ever sets and first-TLS dates, for categorization (serial: each
  // step folds into the previous union).  Everything below only reads them.
  FingerprintSet nss_ever_any;
  FingerprintSet nss_ever_tls;
  std::map<Sha256Digest, rs::util::Date> first_tls_date;
  for (const auto& snap : nss.snapshots()) {
    nss_ever_any = nss_ever_any.set_union(snap.all_fingerprints());
    const auto tls = snap.tls_anchors();
    nss_ever_tls = nss_ever_tls.set_union(tls);
    for (const auto& fp : tls.items()) {
      first_tls_date.emplace(fp, snap.date);
    }
  }

  // Each derivative snapshot diffs against the shared read-only index
  // independently; results land in per-snapshot slots and are collected in
  // snapshot order afterwards.
  const auto& snaps = deriv.snapshots();
  std::vector<std::optional<SnapshotDiff>> results(snaps.size());
  rs::exec::parallel_for(pool, snaps.size(), [&](std::size_t k) {
    const auto& snap = snaps[k];
    const auto deriv_tls = snap.tls_anchors();
    const auto* matched = index.closest_match(deriv_tls);
    if (matched == nullptr) return;

    SnapshotDiff diff;
    diff.date = snap.date;
    diff.matched_version = matched->index;

    const FingerprintSet added = deriv_tls.difference(matched->tls_anchors);
    const FingerprintSet removed = matched->tls_anchors.difference(deriv_tls);

    for (const auto& fp : added.items()) {
      AddCategory cat;
      if (!nss_ever_any.contains(fp)) {
        cat = AddCategory::kNonNssRoot;
      } else if (!nss_ever_tls.contains(fp)) {
        cat = AddCategory::kEmailOnlyRoot;
      } else {
        const auto it = first_tls_date.find(fp);
        cat = (it != first_tls_date.end() && it->second <= matched->date)
                  ? AddCategory::kReAddedRoot
                  : AddCategory::kOther;
      }
      ++diff.adds[static_cast<std::size_t>(cat)];
    }

    // Which matched-version entries carry partial distrust?
    // Find the NSS snapshot for this version to inspect entry trust bits.
    const rs::store::Snapshot* version_snap = nullptr;
    for (const auto& s : nss.snapshots()) {
      if (s.date == matched->date) {
        version_snap = &s;
        break;
      }
    }
    for (const auto& fp : removed.items()) {
      RemoveCategory cat = RemoveCategory::kCustomRemoval;
      if (version_snap != nullptr) {
        if (const auto* entry = version_snap->find(fp)) {
          if (entry->is_partially_distrusted_tls()) {
            cat = RemoveCategory::kPartialDistrustFallout;
          }
        }
      }
      ++diff.removes[static_cast<std::size_t>(cat)];
    }

    results[k] = diff;
  });

  for (const auto& diff : results) {
    if (!diff) continue;
    if (diff->added_total() + diff->removed_total() > 0) {
      out.ever_deviates = true;
    }
    out.points.push_back(*diff);
  }
  return out;
}

}  // namespace rs::analysis
