// Agglomerative clustering of snapshots into root-store families (§4).
//
// Figure 1's four clusters (Microsoft, NSS-like, Apple, Java) are recovered
// mechanically: single-linkage agglomeration over the Jaccard matrix with a
// distance cutoff.  Purity against the known provider->program mapping
// quantifies how cleanly the families separate.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "src/analysis/jaccard.h"

namespace rs::analysis {

/// Clustering output: a cluster id per matrix row.
struct Clustering {
  std::vector<std::size_t> assignment;  // row -> cluster id (0-based, dense)
  std::size_t cluster_count = 0;
};

/// Single-linkage agglomerative clustering, merging while the closest pair
/// of clusters is below `cutoff`.  Chains through intermediate snapshots —
/// the right behaviour for store *lineages*, where consecutive snapshots
/// are near-identical but endpoints a decade apart are not.
Clustering cluster_snapshots(const DistanceMatrix& dist, double cutoff);

/// Complete-linkage agglomerative clustering: clusters merge only while the
/// *farthest* pair across them is below `cutoff`.  The no-chaining ablation
/// (`bench/perf_analysis`): on lineage data it shreds long histories into
/// era fragments, which is why the pipeline defaults to single linkage.
Clustering cluster_snapshots_complete(const DistanceMatrix& dist,
                                      double cutoff);

/// Mean silhouette coefficient of a clustering over its distance matrix,
/// in [-1, 1]; higher = tighter, better-separated clusters.  Singleton
/// clusters contribute 0.
double silhouette_score(const DistanceMatrix& dist, const Clustering& c);

/// Members of each cluster, as label indices.
std::vector<std::vector<std::size_t>> cluster_members(const Clustering& c);

/// For each cluster, the majority provider-derived label and the fraction
/// of members agreeing with it (label supplied per row).
struct ClusterQuality {
  std::vector<std::string> majority_label;  // per cluster
  std::vector<double> purity;               // per cluster
  double overall_purity = 0;                // weighted by cluster size
};
ClusterQuality cluster_quality(const Clustering& c,
                               const std::vector<std::string>& row_labels);

}  // namespace rs::analysis
