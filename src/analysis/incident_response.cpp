#include "src/analysis/incident_response.h"

namespace rs::analysis {

IncidentMeasurement measure_incident(
    const rs::store::StoreDatabase& db, const rs::synth::Incident& incident,
    rs::synth::CertFactory& factory,
    const std::map<std::string, rs::store::TrustOverlay>* overlays) {
  IncidentMeasurement out;
  out.incident = incident.name;
  out.nss_removal = incident.nss_removal;

  // Resolve the incident roots to fingerprints.
  std::vector<rs::crypto::Sha256Digest> prints;
  for (const auto& id : incident.root_ids) {
    if (auto cert = factory.find(id)) prints.push_back(cert->sha256());
  }

  for (const auto& [name, history] : db.histories()) {
    if (name == "NSS") continue;
    const rs::store::TrustOverlay* overlay = nullptr;
    if (overlays != nullptr) {
      const auto it = overlays->find(name);
      if (it != overlays->end()) overlay = &it->second;
    }

    MeasuredResponse r;
    r.provider = name;

    std::vector<rs::crypto::Sha256Digest> carried_prints;
    for (const auto& snap : history.snapshots()) {
      bool any_shipped = false;
      bool any_effective = false;
      for (const auto& fp : prints) {
        const auto* entry = snap.find(fp);
        if (entry == nullptr || !entry->is_tls_anchor()) continue;
        carried_prints.push_back(fp);
        any_shipped = true;
        if (overlay == nullptr || !overlay->is_revoked(fp, snap.date)) {
          any_effective = true;
        }
      }
      if (any_shipped) r.shipped_until = snap.date;
      if (any_effective) r.trusted_until = snap.date;
    }
    const rs::store::FingerprintSet carried(std::move(carried_prints));
    r.certs_carried = static_cast<int>(carried.size());
    if (r.certs_carried == 0) continue;  // provider never included the roots

    // State at the newest snapshot.
    if (!history.empty()) {
      const auto& latest = history.back();
      for (const auto& fp : prints) {
        const auto* entry = latest.find(fp);
        if (entry == nullptr || !entry->is_tls_anchor()) continue;
        r.still_shipped = true;
        if (overlay != nullptr && overlay->is_revoked(fp, latest.date)) {
          ++r.revoked_not_removed;
        } else {
          r.still_trusted = true;
        }
      }
    }
    if (r.trusted_until && !r.still_trusted) {
      r.lag_days = static_cast<int>(*r.trusted_until - incident.nss_removal);
    }
    out.responses.push_back(std::move(r));
  }
  return out;
}

}  // namespace rs::analysis
