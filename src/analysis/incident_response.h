// Incident-response lag measurement (Table 4).
//
// Given an incident (a set of root ids / certificates and NSS's removal
// date), measure for every provider: how many of the roots it carried, the
// last date it still trusted any of them, and the lag relative to NSS.
// Measurement is overlay-aware: a provider may stop *trusting* a root via
// an out-of-band revocation (valid.apple.com) while still *shipping* it —
// both dates are reported, exactly the distinction Table 4's footnotes
// draw.  Values are measured from the snapshot histories, then printed
// alongside the paper's reported ones by the Table 4 bench.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/crypto/digest.h"
#include "src/store/database.h"
#include "src/store/overlay.h"
#include "src/synth/incidents.h"
#include "src/synth/root_spec.h"
#include "src/util/date.h"

namespace rs::analysis {

/// Measured response of one provider to one incident.
struct MeasuredResponse {
  std::string provider;
  int certs_carried = 0;  // incident roots ever TLS-trusted by the provider

  /// Last snapshot date any incident root was *effectively* trusted
  /// (present as a TLS anchor and not revoked by the provider's overlay).
  std::optional<rs::util::Date> trusted_until;
  /// Effectively trusted in the provider's newest snapshot.
  bool still_trusted = false;
  /// trusted_until - nss_removal, when the distrust is complete.
  std::optional<int> lag_days;

  /// Last snapshot date any incident root was *shipped*, regardless of
  /// overlay revocations (equals trusted_until when no overlay applies).
  std::optional<rs::util::Date> shipped_until;
  bool still_shipped = false;
  /// Roots revoked by the overlay yet present in the newest snapshot —
  /// the paper's "revoked via valid.apple.com but not removed".
  int revoked_not_removed = 0;
};

/// All providers' measured responses to one incident, NSS excluded
/// (NSS defines the reference date).
struct IncidentMeasurement {
  std::string incident;
  rs::util::Date nss_removal;
  std::vector<MeasuredResponse> responses;
};

/// Measures one incident across the database.  `factory` resolves the
/// incident's root ids to certificates (they must have been built by the
/// scenario); `overlays` optionally supplies per-provider out-of-band
/// revocation layers.
IncidentMeasurement measure_incident(
    const rs::store::StoreDatabase& db, const rs::synth::Incident& incident,
    rs::synth::CertFactory& factory,
    const std::map<std::string, rs::store::TrustOverlay>* overlays = nullptr);

}  // namespace rs::analysis
