#include "src/verify/temporal.h"

#include <algorithm>

namespace rs::verify {

std::vector<rs::util::Date> flip_breakpoints(
    std::span<const rs::util::Date> snapshot_dates,
    std::span<const rs::x509::Certificate* const> certs, rs::util::Date first,
    rs::util::Date last) {
  std::vector<rs::util::Date> points;
  points.reserve(snapshot_dates.size() + 2 * certs.size() + 1);
  points.push_back(first);
  for (const rs::util::Date d : snapshot_dates) points.push_back(d);
  for (const rs::x509::Certificate* cert : certs) {
    if (cert == nullptr) continue;
    // The verdict can change the day a certificate becomes valid and the
    // day after it expires (is_expired_at is strict: not_after < D).
    points.push_back(cert->validity().not_before.date);
    points.push_back(cert->validity().not_after.date + 1);
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  std::erase_if(points,
                [&](rs::util::Date d) { return d < first || d > last; });
  return points;
}

FlipScan scan_first_rejected(
    std::span<const rs::util::Date> breakpoints,
    const std::function<VerifyResult(rs::util::Date)>& verdict) {
  FlipScan scan;
  for (const rs::util::Date d : breakpoints) {
    ++scan.evaluated;
    const VerifyResult result = verdict(d);
    if (!scan.accepted_from) {
      if (result.accepted) scan.accepted_from = d;
      continue;
    }
    if (!result.accepted) {
      scan.first_rejected = d;
      scan.flip_reason = result.reason;
      break;
    }
  }
  return scan;
}

}  // namespace rs::verify
