// Temporal flip search: the first date an accepted chain turns rejected.
//
// A chain's verdict at date D is a pure function of (a) which certificates
// the provider's store contains at D — piecewise constant between snapshot
// dates — and (b) each path certificate's validity window — piecewise
// constant between its notBefore and the day after its notAfter.  So the
// verdict over a provider's whole coverage window is piecewise constant
// over the breakpoint set {snapshot dates} ∪ {notBefore, notAfter + 1 of
// every supplied certificate}, and evaluating each breakpoint once is an
// *exact* sweep of the entire calendar — O(breakpoints · verify) instead of
// O(days · verify).  The differential suite pins this equivalence against a
// literal day-by-day scan.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "src/util/date.h"
#include "src/verify/verify.h"

namespace rs::verify {

/// Result of a flip scan over one provider's coverage window.
struct FlipScan {
  /// First breakpoint whose verdict is accepted; nullopt when the chain is
  /// never accepted anywhere in the window.
  std::optional<rs::util::Date> accepted_from;
  /// First breakpoint after `accepted_from` whose verdict is rejected —
  /// the DigiNotar question.  nullopt when the chain never flips back.
  std::optional<rs::util::Date> first_rejected;
  /// The rejection reason at `first_rejected` (meaningful only then).
  PathStatus flip_reason = PathStatus::kNoIssuerFound;
  /// Breakpoints evaluated (cost/diagnostics echo).
  std::size_t evaluated = 0;
};

/// The exact breakpoint set for (snapshot dates, path certificates),
/// clipped to the inclusive coverage window [first, last]: every snapshot
/// date plus each certificate's notBefore and notAfter + 1, sorted and
/// deduplicated.  `first` itself is always included so the scan starts at
/// the window's opening verdict.
[[nodiscard]] std::vector<rs::util::Date> flip_breakpoints(
    std::span<const rs::util::Date> snapshot_dates,
    std::span<const rs::x509::Certificate* const> certs, rs::util::Date first,
    rs::util::Date last);

/// Walks `breakpoints` (must be ascending) evaluating `verdict` at each,
/// recording the first accepted date and the first rejection after it.
[[nodiscard]] FlipScan scan_first_rejected(
    std::span<const rs::util::Date> breakpoints,
    const std::function<VerifyResult(rs::util::Date)>& verdict);

}  // namespace rs::verify
