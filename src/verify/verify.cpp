#include "src/verify/verify.h"

#include <algorithm>
#include <cstring>

#include "src/x509/extensions.h"

namespace rs::verify {
namespace {

using rs::x509::Certificate;

/// Issuer/subject chaining predicate: RFC 5280 caseIgnoreMatch, not byte
/// equality (docs/VERIFY.md; the mixed-case regression pins this).
bool chains_to(const Certificate& child, const Certificate& parent) {
  return child.issuer().equivalent(parent.subject());
}

/// Self-issued under the same folded comparison the chain walk uses.
bool self_issued(const Certificate& cert) {
  return cert.issuer().equivalent(cert.subject());
}

std::optional<std::vector<std::uint8_t>> subject_key_id(
    const Certificate& cert) {
  const rs::x509::Extension* ext = rs::x509::find_extension(
      cert.extensions(), rs::asn1::oids::subject_key_id());
  if (ext == nullptr) return std::nullopt;
  auto ski = rs::x509::SubjectKeyIdentifier::parse(ext->value);
  if (!ski.ok()) return std::nullopt;
  return std::move(ski).take().key_id;
}

std::optional<std::vector<std::uint8_t>> authority_key_id(
    const Certificate& cert) {
  const rs::x509::Extension* ext = rs::x509::find_extension(
      cert.extensions(), rs::asn1::oids::authority_key_id());
  if (ext == nullptr) return std::nullopt;
  auto aki = rs::x509::AuthorityKeyIdentifier::parse(ext->value);
  if (!aki.ok()) return std::nullopt;
  return std::move(aki).take().key_id;
}

std::optional<rs::x509::KeyUsage> key_usage(const Certificate& cert) {
  const rs::x509::Extension* ext = rs::x509::find_extension(
      cert.extensions(), rs::asn1::oids::key_usage());
  if (ext == nullptr) return std::nullopt;
  auto ku = rs::x509::KeyUsage::parse(ext->value);
  if (!ku.ok()) return std::nullopt;
  return std::move(ku).take();
}

std::optional<std::int64_t> path_len_constraint(const Certificate& cert) {
  const rs::x509::Extension* ext = rs::x509::find_extension(
      cert.extensions(), rs::asn1::oids::basic_constraints());
  if (ext == nullptr) return std::nullopt;
  auto bc = rs::x509::BasicConstraints::parse(ext->value);
  if (!bc.ok() || !bc.value().ca) return std::nullopt;
  return bc.value().path_len;
}

/// RFC 5280 §6.1 checks over one anchored path (leaf first, anchor last).
/// Returns the first failure in the documented check order; `fail_index`
/// names the offending certificate.
PathStatus check_path(const std::vector<const Certificate*>& path,
                      rs::util::Date date, const TrustOracle& oracle,
                      const std::optional<rs::asn1::Oid>& eku_purpose,
                      std::size_t& fail_index) {
  // 1. Validity window of every certificate at D (anchors included: root
  //    stores do ship expired roots, and a client rejects them).
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (path[i]->is_expired_at(date)) {
      fail_index = i;
      return PathStatus::kCertExpired;
    }
    if (!path[i]->is_valid_at(date)) {
      fail_index = i;
      return PathStatus::kCertNotYetValid;
    }
  }
  // 2. Every issuing certificate must be a CA (BasicConstraints; v1 certs
  //    count as legacy CAs, matching Certificate::is_ca).
  for (std::size_t i = 1; i < path.size(); ++i) {
    if (!path[i]->is_ca()) {
      fail_index = i;
      return PathStatus::kIntermediateNotCa;
    }
  }
  // 3. KeyUsage, when present, must include keyCertSign on issuing certs.
  for (std::size_t i = 1; i < path.size(); ++i) {
    const auto ku = key_usage(*path[i]);
    if (ku && !ku->key_cert_sign) {
      fail_index = i;
      return PathStatus::kKeyUsageNoCertSign;
    }
  }
  // 4. pathLenConstraint: a CA at index i with constraint L allows at most
  //    L non-self-issued issuing certificates below it (indices 1..i-1;
  //    the leaf does not count).
  for (std::size_t i = 1; i < path.size(); ++i) {
    const auto limit = path_len_constraint(*path[i]);
    if (!limit) continue;
    std::int64_t below = 0;
    for (std::size_t j = 1; j < i; ++j) {
      if (!self_issued(*path[j])) ++below;
    }
    if (below > *limit) {
      fail_index = i;
      return PathStatus::kPathLenExceeded;
    }
  }
  // 5. EKU scope gating on every certificate except the anchor (root
  //    programs express anchor purposes via trust bits, not the anchor's
  //    own EKU).  Absent EKU means unrestricted.
  if (eku_purpose) {
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const auto eku = path[i]->extended_key_usage();
      if (eku && !eku->permits(*eku_purpose)) {
        fail_index = i;
        return PathStatus::kEkuScopeMismatch;
      }
    }
  }
  // 6. The anchor's trust bits must grant the queried scope.
  fail_index = path.size() - 1;
  if (oracle.anchor(path.back()->sha256(), date) != OracleAnswer::kYes) {
    return PathStatus::kAnchorNotTrustedForScope;
  }
  return PathStatus::kAccepted;
}

/// Depth-first path enumeration with a visited set (loop-free), AKI/SKI
/// ranked branching, and hard caps.  All state lives here; the walk is a
/// pure function of its inputs.
class Walker {
 public:
  Walker(std::span<const Certificate* const> pool, rs::util::Date date,
         const TrustOracle& oracle,
         const std::optional<rs::asn1::Oid>& eku_purpose,
         const VerifyCaps& caps)
      : date_(date), oracle_(oracle), eku_(eku_purpose), caps_(caps) {
    pool_.reserve(pool.size());
    for (const Certificate* cert : pool) {
      if (cert != nullptr) pool_.push_back(cert);
    }
  }

  VerifyResult run(const Certificate& leaf) {
    path_.push_back(&leaf);
    visited_.push_back(leaf.sha256());
    extend();
    finish_reason();
    return std::move(result_);
  }

 private:
  void record(PathStatus status, std::size_t fail_index) {
    if (result_.candidates.size() >= caps_.max_candidates) {
      done_ = true;
      return;
    }
    CandidatePath candidate;
    candidate.certs = path_;
    candidate.status = status;
    candidate.fail_index = fail_index;
    result_.candidates.push_back(std::move(candidate));
    if (status == PathStatus::kAccepted) {
      result_.accepted = true;
      result_.accepted_index = result_.candidates.size() - 1;
      done_ = true;
    }
  }

  /// Pool indices chaining from `top`, AKI/SKI matches first, then by
  /// ascending fingerprint — a deterministic total order.
  std::vector<std::size_t> ranked_parents(const Certificate& top) const {
    const auto aki = authority_key_id(top);
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      const Certificate* parent = pool_[i];
      if (std::find(visited_.begin(), visited_.end(), parent->sha256()) !=
          visited_.end()) {
        continue;
      }
      if (!chains_to(top, *parent)) continue;
      out.push_back(i);
    }
    std::sort(out.begin(), out.end(), [&](std::size_t a, std::size_t b) {
      const bool a_key = aki && subject_key_id(*pool_[a]) == aki;
      const bool b_key = aki && subject_key_id(*pool_[b]) == aki;
      if (a_key != b_key) return a_key;
      return pool_[a]->sha256() < pool_[b]->sha256();
    });
    return out;
  }

  void extend() {
    if (done_ || ++steps_ > caps_.max_steps) {
      done_ = done_ || steps_ > caps_.max_steps;
      return;
    }
    const Certificate& top = *path_.back();
    // A certificate present in the store at D terminates the path; the
    // per-path checks then decide acceptance.  Branching (cross-signs to a
    // different in-store parent) happens above, not past an anchor.
    if (oracle_.present(top.sha256(), date_) == OracleAnswer::kYes) {
      std::size_t fail_index = 0;
      const PathStatus status =
          check_path(path_, date_, oracle_, eku_, fail_index);
      record(status, fail_index);
      return;
    }
    if (path_.size() >= caps_.max_depth) {
      record(PathStatus::kDepthLimit, path_.size() - 1);
      return;
    }
    const std::vector<std::size_t> parents = ranked_parents(top);
    if (parents.empty()) {
      record(self_issued(top) ? PathStatus::kUntrustedRoot
                              : PathStatus::kNoIssuerFound,
             path_.size() - 1);
      return;
    }
    for (const std::size_t i : parents) {
      path_.push_back(pool_[i]);
      visited_.push_back(pool_[i]->sha256());
      extend();
      path_.pop_back();
      visited_.pop_back();
      if (done_) return;
    }
  }

  /// Primary rejection reason: anchored-path failures (DFS order) beat
  /// kUntrustedRoot beat kDepthLimit beat kNoIssuerFound.
  void finish_reason() {
    if (result_.accepted) {
      result_.reason = PathStatus::kAccepted;
      return;
    }
    std::optional<PathStatus> anchored, untrusted, depth, dead_end;
    for (const CandidatePath& c : result_.candidates) {
      switch (c.status) {
        case PathStatus::kUntrustedRoot:
          if (!untrusted) untrusted = c.status;
          break;
        case PathStatus::kDepthLimit:
          if (!depth) depth = c.status;
          break;
        case PathStatus::kNoIssuerFound:
          if (!dead_end) dead_end = c.status;
          break;
        default:
          if (!anchored) anchored = c.status;
          break;
      }
    }
    if (anchored) result_.reason = *anchored;
    else if (untrusted) result_.reason = *untrusted;
    else if (depth) result_.reason = *depth;
    else result_.reason = PathStatus::kNoIssuerFound;
  }

  std::vector<const Certificate*> pool_;
  rs::util::Date date_;
  const TrustOracle& oracle_;
  const std::optional<rs::asn1::Oid>& eku_;
  const VerifyCaps& caps_;

  VerifyResult result_;
  std::vector<const Certificate*> path_;
  std::vector<rs::crypto::Sha256Digest> visited_;
  std::size_t steps_ = 0;
  bool done_ = false;
};

}  // namespace

const char* to_string(PathStatus s) noexcept {
  switch (s) {
    case PathStatus::kAccepted: return "accepted";
    case PathStatus::kCertNotYetValid: return "cert_not_yet_valid";
    case PathStatus::kCertExpired: return "cert_expired";
    case PathStatus::kIntermediateNotCa: return "intermediate_not_ca";
    case PathStatus::kKeyUsageNoCertSign: return "key_usage_no_cert_sign";
    case PathStatus::kPathLenExceeded: return "path_len_exceeded";
    case PathStatus::kEkuScopeMismatch: return "eku_scope_mismatch";
    case PathStatus::kAnchorNotTrustedForScope:
      return "anchor_not_trusted_for_scope";
    case PathStatus::kUntrustedRoot: return "untrusted_root";
    case PathStatus::kNoIssuerFound: return "no_issuer_found";
    case PathStatus::kDepthLimit: return "depth_limit";
  }
  return "?";
}

VerifyResult verify_chain(const Certificate& leaf,
                          std::span<const Certificate* const> pool,
                          rs::util::Date date, const TrustOracle& oracle,
                          const std::optional<rs::asn1::Oid>& eku_purpose,
                          const VerifyCaps& caps) {
  Walker walker(pool, date, oracle, eku_purpose, caps);
  return walker.run(leaf);
}

}  // namespace rs::verify
