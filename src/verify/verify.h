// Chain building and temporal path validation (docs/VERIFY.md).
//
// The paper measures trust-anchor *membership*; real clients build and
// validate *chains*.  rs_verify answers the million-user question "would
// client X accept this chain on date D?": given a leaf, an intermediate
// pool, and a temporal trust oracle (the provider's store resolved at D),
// it enumerates candidate paths by issuer/subject name chaining — depth
// capped, loop free, AKI/SKI-assisted candidate ranking — terminates paths
// at certificates present in the store at D, and applies per-path RFC 5280
// checks (validity windows, basicConstraints CA bit, pathLenConstraint,
// KeyUsage keyCertSign, EKU scope gating, per-scope trust bits).  Every
// candidate path carries a machine-readable status; the whole result is
// deterministic for a given input, which is what lets the serve layer
// cache verdicts and the differential suite pin them against a brute-force
// validator.
//
// The layer is oracle-shaped on purpose: it never touches TrustIndex or
// QueryEngine directly, so it has no dependency on rs_query (rs_query
// links rs_verify, not the other way around) and tests can drive it from
// raw snapshot scans.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/asn1/oid.h"
#include "src/util/date.h"
#include "src/x509/certificate.h"

namespace rs::verify {

/// Typed per-path verdict.  kAccepted is the only success; everything else
/// names the first check the path failed (or why building stopped).
enum class PathStatus : std::uint8_t {
  kAccepted,
  // Anchored-path check failures, in check order.
  kCertNotYetValid,          // a path cert's validity has not begun at D
  kCertExpired,              // a path cert's validity has ended at D
  kIntermediateNotCa,        // an issuing cert lacks the CA bit
  kKeyUsageNoCertSign,       // an issuing cert's KeyUsage lacks keyCertSign
  kPathLenExceeded,          // a pathLenConstraint is violated below a CA
  kEkuScopeMismatch,         // a non-anchor cert's EKU excludes the scope
  kAnchorNotTrustedForScope, // anchor present but trust bits lack the scope
  // Dead ends (the path never reached an in-store certificate).
  kUntrustedRoot,            // self-issued top, not in the store at D
  kNoIssuerFound,            // no pool cert chains from the path's top
  kDepthLimit,               // the depth cap stopped the walk
};

/// Stable wire token, e.g. "path_len_exceeded" (docs/VERIFY.md taxonomy).
const char* to_string(PathStatus s) noexcept;

/// Three-valued membership answer, mirroring rs::query::TrustAnswer without
/// depending on it (rs_verify sits below rs_query).
enum class OracleAnswer : std::uint8_t { kYes, kNo, kNotCovered };

/// The temporal store interface.  Both callables answer for one fixed
/// (provider, scope) pair; the date varies per call because
/// first_rejected_at() sweeps it.
struct TrustOracle {
  /// Is the certificate in the store at all at `date` (bare presence)?
  /// Chain building terminates on present certificates.
  std::function<OracleAnswer(const rs::crypto::Sha256Digest&, rs::util::Date)>
      present;
  /// Is it a trust anchor for the queried scope at `date`?  For a bare
  /// presence scope this is the same predicate as `present`.
  std::function<OracleAnswer(const rs::crypto::Sha256Digest&, rs::util::Date)>
      anchor;
};

/// Hard caps on path enumeration; defaults bound the serve-path work for
/// the request caps in src/query/request.h (pool <= kMaxPoolCerts).
struct VerifyCaps {
  std::size_t max_depth = 8;       // certificates per path, leaf included
  std::size_t max_candidates = 32; // recorded candidate paths
  std::size_t max_steps = 4096;    // DFS expansions (pathological pools)
};

/// One examined path: leaf first, deepest certificate last.  `fail_index`
/// is the path index of the certificate that triggered `status` (0 when the
/// status is not about one certificate, e.g. kNoIssuerFound points at the
/// top of the truncated path).
struct CandidatePath {
  std::vector<const rs::x509::Certificate*> certs;
  PathStatus status = PathStatus::kNoIssuerFound;
  std::size_t fail_index = 0;
};

/// The full verdict for one (leaf, pool, date) evaluation.
struct VerifyResult {
  bool accepted = false;
  /// kAccepted, or the highest-priority rejection across candidates:
  /// anchored-path failures (first in DFS order) beat kUntrustedRoot beat
  /// kDepthLimit beat kNoIssuerFound.
  PathStatus reason = PathStatus::kNoIssuerFound;
  /// Paths in DFS discovery order, up to caps.max_candidates.  When a path
  /// is accepted it is the last entry (enumeration stops there).
  std::vector<CandidatePath> candidates;
  /// Index into `candidates` of the accepted path, or npos.
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::size_t accepted_index = kNone;

  const CandidatePath* accepted_path() const noexcept {
    return accepted_index == kNone ? nullptr : &candidates[accepted_index];
  }
};

/// Builds and checks candidate paths for `leaf` over `pool` at `date`.
///
/// `eku_purpose` is the Extended Key Usage OID the scope demands of every
/// non-anchor certificate that carries an EKU extension (nullopt == no EKU
/// gating, used for bare-presence scope).  Null pool entries are ignored.
/// Deterministic: equal inputs yield equal results, including candidate
/// order.
[[nodiscard]] VerifyResult verify_chain(
    const rs::x509::Certificate& leaf,
    std::span<const rs::x509::Certificate* const> pool, rs::util::Date date,
    const TrustOracle& oracle,
    const std::optional<rs::asn1::Oid>& eku_purpose,
    const VerifyCaps& caps = {});

}  // namespace rs::verify
