#include "src/formats/sniff.h"

#include <fstream>

#include "src/formats/instrument.h"
#include "src/formats/jks.h"
#include "src/formats/pem_bundle.h"
#include "src/formats/portable.h"

namespace rs::formats {

const char* to_string(StoreFormat f) noexcept {
  switch (f) {
    case StoreFormat::kCertdata:
      return "certdata.txt";
    case StoreFormat::kPemBundle:
      return "PEM bundle";
    case StoreFormat::kJks:
      return "JKS keystore";
    case StoreFormat::kRsts:
      return "RSTS";
    case StoreFormat::kUnknown:
      return "unknown";
  }
  return "?";
}

StoreFormat detect_store_format(std::string_view content) {
  if (content.size() >= 4 && static_cast<unsigned char>(content[0]) == 0xFE &&
      static_cast<unsigned char>(content[1]) == 0xED &&
      static_cast<unsigned char>(content[2]) == 0xFE &&
      static_cast<unsigned char>(content[3]) == 0xED) {
    return StoreFormat::kJks;
  }
  if (content.rfind("RSTS ", 0) == 0) return StoreFormat::kRsts;
  if (content.find("BEGINDATA") != std::string_view::npos ||
      content.find("CKA_CLASS") != std::string_view::npos) {
    return StoreFormat::kCertdata;
  }
  if (content.find("-----BEGIN") != std::string_view::npos) {
    return StoreFormat::kPemBundle;
  }
  return StoreFormat::kUnknown;
}

rs::util::Result<ParsedStore> parse_any_store(std::string_view content,
                                              bool multi_purpose) {
  rs::obs::Span span("formats/sniff");
  const auto policy = multi_purpose ? BundleTrustPolicy::multi_purpose()
                                    : BundleTrustPolicy::tls_only();
  switch (detect_store_format(content)) {
    case StoreFormat::kJks:
      return parse_jks(
          {reinterpret_cast<const std::uint8_t*>(content.data()),
           content.size()});
    case StoreFormat::kRsts:
      return parse_rsts(content);
    case StoreFormat::kCertdata:
      return parse_certdata(content);
    case StoreFormat::kPemBundle:
    case StoreFormat::kUnknown:
      return parse_pem_bundle(content, policy);
  }
  return rs::util::Result<ParsedStore>::err("unreachable");
}

rs::util::Result<ParsedStore> load_any_store(const std::string& path,
                                             bool multi_purpose) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return rs::util::Result<ParsedStore>::err("cannot open " + path);
  }
  const std::string content(std::istreambuf_iterator<char>(in),
                            std::istreambuf_iterator<char>{});
  return parse_any_store(content, multi_purpose);
}

}  // namespace rs::formats
