#include "src/formats/portable.h"

#include <charconv>
#include <optional>

#include "src/encoding/base64.h"
#include "src/formats/instrument.h"
#include "src/util/hex.h"
#include "src/util/strings.h"

namespace rs::formats {

using rs::store::TrustEntry;
using rs::store::TrustLevel;
using rs::store::TrustPurpose;
using rs::util::Result;

namespace {

const char* level_token(TrustLevel level) {
  switch (level) {
    case TrustLevel::kTrustedDelegator:
      return "trusted-delegator";
    case TrustLevel::kMustVerify:
      return "must-verify";
    case TrustLevel::kDistrusted:
      return "distrusted";
  }
  return "must-verify";
}

std::optional<TrustLevel> parse_level(std::string_view token) {
  if (token == "trusted-delegator") return TrustLevel::kTrustedDelegator;
  if (token == "must-verify") return TrustLevel::kMustVerify;
  if (token == "distrusted") return TrustLevel::kDistrusted;
  return std::nullopt;
}

std::optional<TrustPurpose> parse_purpose(std::string_view token) {
  if (token == "server-auth") return TrustPurpose::kServerAuth;
  if (token == "email-protection") return TrustPurpose::kEmailProtection;
  if (token == "code-signing") return TrustPurpose::kCodeSigning;
  return std::nullopt;
}

}  // namespace

std::string write_rsts(const std::vector<TrustEntry>& entries) {
  std::string out = "RSTS " + std::to_string(kRstsVersion) + "\n";
  out += "# Root Store Trust Serialization; see formats/portable.h\n";
  for (const auto& e : entries) {
    const auto& cert = *e.certificate;
    out += "root\n";
    const auto cn = cert.subject().common_name();
    if (cn) out += "  label " + std::string(*cn) + "\n";
    out += "  sha256 " + rs::util::hex_encode(cert.sha256()) + "\n";
    out += "  cert " + rs::encoding::base64_encode(cert.der()) + "\n";
    for (TrustPurpose p : rs::store::kAllPurposes) {
      const auto& trust = e.trust_for(p);
      out += std::string("  trust ") + rs::store::to_string(p) + " " +
             level_token(trust.level);
      if (trust.distrust_after) {
        out += " distrust-after=" + trust.distrust_after->to_string();
      }
      out += "\n";
    }
    out += "end\n";
  }
  return out;
}

namespace {

Result<ParsedStore> parse_rsts_impl(std::string_view text) {
  const auto lines = rs::util::split_lines(text);
  std::size_t i = 0;

  // Header.
  while (i < lines.size() && rs::util::trim(lines[i]).empty()) ++i;
  if (i >= lines.size()) {
    return Result<ParsedStore>::err("rsts: empty document");
  }
  {
    const auto header = rs::util::split_ws(rs::util::trim(lines[i]));
    if (header.size() != 2 || header[0] != "RSTS") {
      return Result<ParsedStore>::err("rsts: missing 'RSTS <version>' header");
    }
    int version = 0;
    const auto* first = header[1].data();
    const auto* last = header[1].data() + header[1].size();
    auto [ptr, ec] = std::from_chars(first, last, version);
    if (ec != std::errc{} || ptr != last) {
      return Result<ParsedStore>::err("rsts: malformed version");
    }
    if (version != kRstsVersion) {
      return Result<ParsedStore>::err("rsts: unsupported version " +
                                      std::to_string(version));
    }
    ++i;
  }

  ParsedStore out;
  while (i < lines.size()) {
    const std::string_view line = rs::util::trim(lines[i]);
    if (line.empty() || line.front() == '#') {
      ++i;
      continue;
    }
    if (line != "root") {
      return Result<ParsedStore>::err("rsts: expected 'root' at line " +
                                      std::to_string(i + 1));
    }
    ++i;

    // One root block.
    std::string label;
    std::string sha256_hex;
    std::vector<std::uint8_t> der;
    bool der_ok = false;
    TrustEntry entry;
    bool closed = false;
    bool entry_bad = false;

    for (; i < lines.size(); ++i) {
      const std::string_view body = rs::util::trim(lines[i]);
      if (body.empty() || body.front() == '#') continue;
      if (body == "end") {
        closed = true;
        ++i;
        break;
      }
      const auto tokens = rs::util::split_ws(body);
      if (tokens.empty()) continue;
      const std::string_view key = tokens[0];
      if (key == "label") {
        const std::size_t pos = body.find("label");
        label = std::string(rs::util::trim(body.substr(pos + 5)));
      } else if (key == "sha256" && tokens.size() == 2) {
        sha256_hex = rs::util::to_lower(tokens[1]);
      } else if (key == "cert" && tokens.size() == 2) {
        auto decoded = rs::encoding::base64_decode(tokens[1]);
        if (!decoded) {
          out.warnings.push_back("rsts: bad base64 in cert at line " +
                                 std::to_string(i + 1));
          entry_bad = true;
        } else {
          der = std::move(*decoded);
          der_ok = true;
        }
      } else if (key == "trust" && tokens.size() >= 3) {
        const auto purpose = parse_purpose(tokens[1]);
        const auto level = parse_level(tokens[2]);
        if (!purpose || !level) {
          out.warnings.push_back("rsts: unknown trust tokens at line " +
                                 std::to_string(i + 1));
          continue;
        }
        entry.trust_for(*purpose).level = *level;
        for (std::size_t t = 3; t < tokens.size(); ++t) {
          if (rs::util::starts_with(tokens[t], "distrust-after=")) {
            const auto date =
                rs::util::Date::parse(tokens[t].substr(15));
            if (!date) {
              out.warnings.push_back("rsts: bad distrust-after at line " +
                                     std::to_string(i + 1));
            } else {
              entry.trust_for(*purpose).distrust_after = date;
            }
          } else {
            out.warnings.push_back("rsts: unknown trust attribute '" +
                                   std::string(tokens[t]) + "' at line " +
                                   std::to_string(i + 1));
          }
        }
      } else {
        // Forward compatibility: unknown keys warn and are skipped.
        out.warnings.push_back("rsts: unknown key '" + std::string(key) +
                               "' at line " + std::to_string(i + 1));
      }
    }
    if (!closed) {
      return Result<ParsedStore>::err("rsts: unterminated root block");
    }
    if (entry_bad) continue;
    if (!der_ok) {
      out.warnings.push_back("rsts: root block without cert skipped" +
                             (label.empty() ? "" : " (" + label + ")"));
      continue;
    }
    // The pin is mandatory: an RSTS consumer must never accept a
    // certificate whose integrity line is absent or wrong.
    if (sha256_hex.empty()) {
      out.warnings.push_back("rsts: root block without sha256 pin skipped" +
                             (label.empty() ? "" : " (" + label + ")"));
      continue;
    }
    auto cert = rs::x509::Certificate::parse(der);
    if (!cert) {
      out.warnings.push_back("rsts: undecodable certificate skipped: " +
                             cert.error());
      continue;
    }
    if (rs::util::hex_encode(cert.value().sha256()) != sha256_hex) {
      out.warnings.push_back("rsts: sha256 pin mismatch, entry rejected" +
                             (label.empty() ? "" : " (" + label + ")"));
      continue;
    }
    entry.certificate =
        std::make_shared<const rs::x509::Certificate>(std::move(cert).take());
    out.entries.push_back(std::move(entry));
  }
  return out;
}

}  // namespace

Result<ParsedStore> parse_rsts(std::string_view text) {
  rs::obs::Span span("formats/rsts");
  auto result = parse_rsts_impl(text);
  detail::note_parse(span, text.size(), result);
  return result;
}

}  // namespace rs::formats
