// Certificate-directory stores (Android, Apple open-source, Debian's
// /usr/share/ca-certificates).
//
// These providers keep one file per root.  Android names files by the
// OpenSSL subject-name hash ("5ed36f99.0"); Apple and Debian use
// human-readable names.  The in-memory representation is a (name, content)
// list so the parsers are filesystem-free; load_cert_dir_from_disk wires the
// real filesystem in for the examples.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/formats/certdata.h"
#include "src/formats/pem_bundle.h"
#include "src/util/result.h"

namespace rs::formats {

/// One file in a certificate directory.
struct CertDirFile {
  std::string name;
  std::string content;  // PEM or raw DER
};

/// Parses a directory listing: each file may contain PEM blocks or raw DER.
/// Trust is assigned per `policy` (directories carry no trust metadata).
[[nodiscard]] rs::util::Result<ParsedStore> parse_cert_dir(
    const std::vector<CertDirFile>& files, const BundleTrustPolicy& policy);

/// Serializes entries to a directory listing, one PEM file per root, named
/// "<sanitized-cn>_<short-fp>.pem" so names are unique and stable.
[[nodiscard]] std::vector<CertDirFile> write_cert_dir(
    const std::vector<rs::store::TrustEntry>& entries);

/// Reads every regular file in `path` (non-recursive) into CertDirFiles.
/// Filesystem errors produce an error Result; an empty directory is valid.
[[nodiscard]] rs::util::Result<std::vector<CertDirFile>> load_cert_dir_from_disk(
    const std::string& path);

}  // namespace rs::formats
