#include "src/formats/authroot_stl.h"

#include "src/asn1/oid.h"
#include "src/asn1/reader.h"
#include "src/asn1/time.h"
#include "src/asn1/writer.h"
#include "src/formats/instrument.h"
#include "src/util/hex.h"

namespace rs::formats {

using rs::asn1::Oid;
using rs::asn1::Reader;
using rs::asn1::Writer;
using rs::store::TrustEntry;
using rs::store::TrustLevel;
using rs::store::TrustPurpose;
using rs::util::Result;

namespace {

Oid purpose_oid(TrustPurpose p) {
  switch (p) {
    case TrustPurpose::kServerAuth:
      return rs::asn1::oids::eku_server_auth();
    case TrustPurpose::kEmailProtection:
      return rs::asn1::oids::eku_email_protection();
    case TrustPurpose::kCodeSigning:
      return rs::asn1::oids::eku_code_signing();
  }
  return rs::asn1::oids::eku_server_auth();
}

std::optional<TrustPurpose> purpose_from_oid(const Oid& oid) {
  if (oid == rs::asn1::oids::eku_server_auth()) return TrustPurpose::kServerAuth;
  if (oid == rs::asn1::oids::eku_email_protection())
    return TrustPurpose::kEmailProtection;
  if (oid == rs::asn1::oids::eku_code_signing())
    return TrustPurpose::kCodeSigning;
  return std::nullopt;
}

}  // namespace

AuthRootBlob write_authroot(const std::vector<TrustEntry>& entries) {
  AuthRootBlob blob;
  Writer entry_list;
  for (const auto& e : entries) {
    const auto& cert = *e.certificate;
    const std::string sha1_hex = rs::util::hex_encode(cert.sha1());
    blob.certs.emplace(sha1_hex, cert.der());

    Writer subject;
    subject.add_octet_string(cert.sha1());

    Writer ekus;
    Writer disallowed;
    bool any_disallowed = false;
    bool all_disallowed = true;
    for (TrustPurpose p : rs::store::kAllPurposes) {
      switch (e.trust_for(p).level) {
        case TrustLevel::kTrustedDelegator:
          ekus.add_oid(purpose_oid(p));
          all_disallowed = false;
          break;
        case TrustLevel::kDistrusted:
          disallowed.add_oid(purpose_oid(p));
          any_disallowed = true;
          break;
        case TrustLevel::kMustVerify:
          all_disallowed = false;
          break;
      }
    }
    subject.add_sequence(ekus);
    if (any_disallowed) subject.add_context(0, disallowed);
    const auto& tls = e.trust_for(TrustPurpose::kServerAuth);
    if (tls.distrust_after) {
      Writer when;
      rs::asn1::write_time(when, rs::asn1::at_midnight(*tls.distrust_after));
      subject.add_context(1, when);
    }
    if (any_disallowed && all_disallowed) {
      Writer flag;
      flag.add_boolean(true);
      subject.add_context(2, flag);
    }
    entry_list.add_sequence(subject);
  }

  Writer body;
  body.add_small_integer(1);  // version
  body.add_sequence(entry_list);
  Writer top;
  top.add_sequence(body);
  blob.stl = std::move(top).take();
  return blob;
}

namespace {

Result<ParsedStore> parse_authroot_impl(std::span<const std::uint8_t> stl,
                                        const CertByHash& certs) {
  Reader top(stl);
  auto body = top.read_sequence();
  if (!body) return body.propagate<ParsedStore>();
  auto version = body.value().read_small_integer();
  if (!version) return version.propagate<ParsedStore>();
  if (version.value() != 1) {
    return Result<ParsedStore>::err("authroot: unsupported CTL version " +
                                    std::to_string(version.value()));
  }
  auto list = body.value().read_sequence();
  if (!list) return list.propagate<ParsedStore>();

  ParsedStore out;
  while (!list.value().at_end()) {
    auto subject = list.value().read_sequence();
    if (!subject) return subject.propagate<ParsedStore>();
    Reader& s = subject.value();

    auto sha1 = s.read_octet_string();
    if (!sha1) return sha1.propagate<ParsedStore>();
    if (sha1.value().size() != 20) {
      return Result<ParsedStore>::err("authroot: subject id is not SHA-1");
    }
    const std::string sha1_hex = rs::util::hex_encode(sha1.value());

    TrustEntry entry;
    auto ekus = s.read_sequence();
    if (!ekus) return ekus.propagate<ParsedStore>();
    while (!ekus.value().at_end()) {
      auto oid = ekus.value().read_oid();
      if (!oid) return oid.propagate<ParsedStore>();
      if (const auto p = purpose_from_oid(oid.value())) {
        entry.trust_for(*p).level = TrustLevel::kTrustedDelegator;
      } else {
        out.warnings.push_back("authroot: unrecognized EKU " +
                               oid.value().to_dotted() + " for " + sha1_hex);
      }
    }
    if (s.next_is(rs::asn1::context(0))) {
      auto disallowed = s.read_context(0);
      if (!disallowed) return disallowed.propagate<ParsedStore>();
      while (!disallowed.value().at_end()) {
        auto oid = disallowed.value().read_oid();
        if (!oid) return oid.propagate<ParsedStore>();
        if (const auto p = purpose_from_oid(oid.value())) {
          entry.trust_for(*p).level = TrustLevel::kDistrusted;
        }
      }
    }
    if (s.next_is(rs::asn1::context(1))) {
      auto when = s.read_context(1);
      if (!when) return when.propagate<ParsedStore>();
      auto t = rs::asn1::read_time(when.value());
      if (!t) return t.propagate<ParsedStore>();
      entry.trust_for(TrustPurpose::kServerAuth).distrust_after = t.value().date;
    }
    if (s.next_is(rs::asn1::context(2))) {
      auto flag = s.read_context(2);
      if (!flag) return flag.propagate<ParsedStore>();
      auto b = flag.value().read_boolean();
      if (!b) return b.propagate<ParsedStore>();
      if (b.value()) {
        for (TrustPurpose p : rs::store::kAllPurposes) {
          entry.trust_for(p).level = TrustLevel::kDistrusted;
        }
      }
    }

    const auto it = certs.find(sha1_hex);
    if (it == certs.end()) {
      out.warnings.push_back("authroot: no cached certificate for " + sha1_hex);
      continue;
    }
    auto cert = rs::x509::Certificate::parse(it->second);
    if (!cert) {
      out.warnings.push_back("authroot: cached certificate for " + sha1_hex +
                             " undecodable: " + cert.error());
      continue;
    }
    if (rs::util::hex_encode(cert.value().sha1()) != sha1_hex) {
      out.warnings.push_back("authroot: cache mismatch for " + sha1_hex);
      continue;
    }
    entry.certificate =
        std::make_shared<const rs::x509::Certificate>(std::move(cert).take());
    out.entries.push_back(std::move(entry));
  }
  return out;
}

}  // namespace

Result<ParsedStore> parse_authroot(std::span<const std::uint8_t> stl,
                                   const CertByHash& certs) {
  rs::obs::Span span("formats/authroot");
  auto result = parse_authroot_impl(stl, certs);
  detail::note_parse(span, stl.size(), result);
  return result;
}

}  // namespace rs::formats
