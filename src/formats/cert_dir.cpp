#include "src/formats/cert_dir.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "src/encoding/pem.h"
#include "src/formats/instrument.h"
#include "src/util/hex.h"

namespace rs::formats {

using rs::store::TrustEntry;
using rs::util::Result;

namespace {

Result<ParsedStore> parse_cert_dir_impl(const std::vector<CertDirFile>& files,
                                        const BundleTrustPolicy& policy) {
  ParsedStore out;
  for (const auto& file : files) {
    // Heuristic matching real tooling: PEM if the marker appears, else DER.
    if (file.content.find("-----BEGIN") != std::string::npos) {
      auto parsed = parse_pem_bundle(file.content, policy);
      if (!parsed) {
        out.warnings.push_back(file.name + ": " + parsed.error());
        continue;
      }
      for (auto& w : parsed.value().warnings) {
        out.warnings.push_back(file.name + ": " + w);
      }
      for (auto& e : parsed.value().entries) {
        out.entries.push_back(std::move(e));
      }
    } else {
      const std::vector<std::uint8_t> der(file.content.begin(),
                                          file.content.end());
      auto cert = rs::x509::Certificate::parse(der);
      if (!cert) {
        out.warnings.push_back(file.name +
                               ": undecodable DER: " + cert.error());
        continue;
      }
      TrustEntry entry;
      entry.certificate =
          std::make_shared<const rs::x509::Certificate>(std::move(cert).take());
      for (auto p : policy.granted) {
        entry.trust_for(p).level = rs::store::TrustLevel::kTrustedDelegator;
      }
      out.entries.push_back(std::move(entry));
    }
  }
  return out;
}

}  // namespace

Result<ParsedStore> parse_cert_dir(const std::vector<CertDirFile>& files,
                                   const BundleTrustPolicy& policy) {
  rs::obs::Span span("formats/cert_dir");
  std::size_t bytes = 0;
  for (const auto& file : files) bytes += file.content.size();
  auto result = parse_cert_dir_impl(files, policy);
  detail::note_parse(span, bytes, result);
  return result;
}

namespace {
std::string sanitize(std::string_view name) {
  std::string out;
  for (char c : name) {
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
        (c >= '0' && c <= '9')) {
      out.push_back(c);
    } else if (c == ' ' || c == '-' || c == '_' || c == '.') {
      out.push_back('_');
    }
  }
  if (out.empty()) out = "root";
  return out;
}
}  // namespace

std::vector<CertDirFile> write_cert_dir(const std::vector<TrustEntry>& entries) {
  std::vector<CertDirFile> out;
  out.reserve(entries.size());
  for (const auto& e : entries) {
    const auto& cert = *e.certificate;
    const std::string cn =
        std::string(cert.subject().common_name().value_or("root"));
    CertDirFile file;
    file.name = sanitize(cn) + "_" + cert.short_id() + ".pem";
    file.content = rs::encoding::pem_encode("CERTIFICATE", cert.der());
    out.push_back(std::move(file));
  }
  return out;
}

Result<std::vector<CertDirFile>> load_cert_dir_from_disk(
    const std::string& path) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(path, ec)) {
    return Result<std::vector<CertDirFile>>::err("not a directory: " + path);
  }
  std::vector<CertDirFile> files;
  for (const auto& entry : fs::directory_iterator(path, ec)) {
    if (ec) break;
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    if (!in) {
      return Result<std::vector<CertDirFile>>::err("unreadable file: " +
                                                   entry.path().string());
    }
    CertDirFile f;
    f.name = entry.path().filename().string();
    f.content.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    files.push_back(std::move(f));
  }
  if (ec) {
    return Result<std::vector<CertDirFile>>::err("directory iteration failed: " +
                                                 ec.message());
  }
  std::sort(files.begin(), files.end(),
            [](const CertDirFile& a, const CertDirFile& b) {
              return a.name < b.name;
            });
  return files;
}

}  // namespace rs::formats
