#include "src/formats/dataset_io.h"

#include <filesystem>
#include <fstream>
#include <map>

#include "src/formats/instrument.h"
#include "src/formats/portable.h"
#include "src/util/strings.h"

namespace rs::formats {

namespace fs = std::filesystem;
using rs::util::Result;

namespace {

constexpr std::string_view kManifestHeader = "RSDS 1";

Result<std::monostate> write_file(const fs::path& path,
                                  const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
  if (!out) {
    return Result<std::monostate>::err("dataset: cannot write " +
                                       path.string());
  }
  return std::monostate{};
}

}  // namespace

Result<std::monostate> write_dataset(const rs::store::StoreDatabase& db,
                                     const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Result<std::monostate>::err("dataset: cannot create " + dir + ": " +
                                       ec.message());
  }

  std::string manifest = std::string(kManifestHeader) + "\n";
  for (const auto& [provider, history] : db.histories()) {
    const fs::path provider_dir = fs::path(dir) / provider;
    fs::create_directories(provider_dir, ec);
    if (ec) {
      return Result<std::monostate>::err("dataset: cannot create " +
                                         provider_dir.string());
    }
    // Same-day snapshots get a numeric suffix to keep file names unique.
    std::map<std::string, int> seen_dates;
    for (const auto& snap : history.snapshots()) {
      const std::string date = snap.date.to_string();
      const int n = seen_dates[date]++;
      const std::string name =
          n == 0 ? date + ".rsts" : date + "-" + std::to_string(n) + ".rsts";
      const std::string rel = provider + "/" + name;
      auto written =
          write_file(fs::path(dir) / rel, write_rsts(snap.entries));
      if (!written) return written;
      manifest += provider + "\t" + date + "\t" + snap.version + "\t" + rel +
                  "\n";
    }
  }
  return write_file(fs::path(dir) / "MANIFEST", manifest);
}

Result<rs::store::StoreDatabase> load_dataset(const std::string& dir) {
  rs::obs::Span span("formats/dataset");
  using Out = Result<rs::store::StoreDatabase>;
  std::ifstream manifest_in(fs::path(dir) / "MANIFEST", std::ios::binary);
  if (!manifest_in) {
    return Out::err("dataset: missing MANIFEST in " + dir);
  }
  const std::string manifest(std::istreambuf_iterator<char>(manifest_in),
                             std::istreambuf_iterator<char>{});
  const auto lines = rs::util::split_lines(manifest);
  if (lines.empty() || rs::util::trim(lines[0]) != kManifestHeader) {
    return Out::err("dataset: MANIFEST missing 'RSDS 1' header");
  }

  std::map<std::string, rs::store::ProviderHistory> histories;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const auto line = rs::util::trim(lines[i]);
    if (line.empty() || line.front() == '#') continue;
    const auto fields = rs::util::split(line, '\t');
    if (fields.size() != 4) {
      return Out::err("dataset: malformed MANIFEST line " +
                      std::to_string(i + 1));
    }
    const std::string provider(fields[0]);
    const auto date = rs::util::Date::parse(fields[1]);
    if (!date) {
      return Out::err("dataset: bad date in MANIFEST line " +
                      std::to_string(i + 1));
    }
    const fs::path path = fs::path(dir) / std::string(fields[3]);
    std::ifstream in(path, std::ios::binary);
    if (!in) return Out::err("dataset: missing snapshot file " + path.string());
    const std::string content(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>{});
    auto parsed = parse_rsts(content);
    if (!parsed) {
      return Out::err("dataset: " + path.string() + ": " + parsed.error());
    }
    if (!parsed.value().warnings.empty()) {
      return Out::err("dataset: " + path.string() +
                      " has warnings; refusing to load a damaged artifact (" +
                      parsed.value().warnings.front() + ")");
    }

    rs::store::Snapshot snap;
    snap.provider = provider;
    snap.date = *date;
    snap.version = std::string(fields[2]);
    snap.entries = std::move(parsed.value().entries);
    auto [it, inserted] =
        histories.try_emplace(provider, rs::store::ProviderHistory(provider));
    (void)inserted;
    it->second.add(std::move(snap));
  }

  rs::store::StoreDatabase db;
  for (auto& [name, history] : histories) {
    (void)name;
    db.add(std::move(history));
  }
  span.set_items(db.total_snapshots());
  rs::obs::Registry::global()
      .counter("formats.snapshots_parsed")
      .add(db.total_snapshots());
  return db;
}

}  // namespace rs::formats
