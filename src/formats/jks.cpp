#include "src/formats/jks.h"

#include "src/crypto/sha1.h"
#include "src/formats/instrument.h"
#include "src/util/hex.h"

namespace rs::formats {

using rs::store::TrustEntry;
using rs::store::TrustLevel;
using rs::store::TrustPurpose;
using rs::util::Result;

namespace {

constexpr std::uint32_t kMagic = 0xFEEDFEEDu;
constexpr std::uint32_t kVersion2 = 2;
constexpr std::uint32_t kTrustedCertTag = 2;
constexpr std::string_view kWhitener = "Mighty Aphrodite";

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int s = 24; s >= 0; s -= 8) {
    out.push_back(static_cast<std::uint8_t>(v >> s));
  }
}
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int s = 56; s >= 0; s -= 8) {
    out.push_back(static_cast<std::uint8_t>(v >> s));
  }
}
// Java DataOutput.writeUTF: u16 byte length + modified UTF-8.  Root aliases
// are ASCII in practice; we restrict to ASCII and document it.
void put_utf(std::vector<std::uint8_t>& out, std::string_view s) {
  put_u16(out, static_cast<std::uint16_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

// Password bytes as Java uses them for the digest: UTF-16BE code units.
std::vector<std::uint8_t> password_utf16(std::string_view password) {
  std::vector<std::uint8_t> out;
  out.reserve(password.size() * 2);
  for (char c : password) {
    out.push_back(0);
    out.push_back(static_cast<std::uint8_t>(c));
  }
  return out;
}

rs::crypto::Sha1Digest integrity_digest(std::string_view password,
                                        std::span<const std::uint8_t> data) {
  rs::crypto::Sha1 h;
  const auto pw = password_utf16(password);
  h.update(pw);
  h.update({reinterpret_cast<const std::uint8_t*>(kWhitener.data()),
            kWhitener.size()});
  h.update(data);
  return h.finish();
}

// Bounds-checked big-endian cursor.  Every read verifies the remaining byte
// count itself (overflow-proof: compares n against remaining(), never
// pos_ + n); a short read returns zero / an empty span and latches failed().
// Callers still call need() first for precise diagnostics, but a missed
// check can no longer read out of bounds.
class ByteCursor {
 public:
  explicit ByteCursor(std::span<const std::uint8_t> data) : data_(data) {}

  bool need(std::size_t n) const { return n <= remaining(); }
  bool failed() const { return failed_; }
  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return data_.size() - pos_; }

  std::uint16_t u16() { return static_cast<std::uint16_t>(be(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(be(4)); }
  std::uint64_t u64() { return be(8); }

  std::span<const std::uint8_t> bytes(std::size_t n) {
    if (!need(n)) {
      failed_ = true;
      return {};
    }
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

 private:
  std::uint64_t be(std::size_t n) {
    if (!need(n)) {
      failed_ = true;
      return 0;
    }
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < n; ++i) v = (v << 8) | data_[pos_++];
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

std::string sanitize_alias(std::string_view cn) {
  std::string out;
  for (char c : cn) {
    if (static_cast<unsigned char>(c) < 0x80 && c != '\n' && c != '\r') {
      out.push_back(
          c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c);
    }
  }
  if (out.empty()) out = "root";
  return out;
}

}  // namespace

std::vector<std::uint8_t> write_jks(const std::vector<TrustEntry>& entries,
                                    rs::util::Date created,
                                    std::string_view password) {
  std::vector<std::uint8_t> out;
  put_u32(out, kMagic);
  put_u32(out, kVersion2);
  put_u32(out, static_cast<std::uint32_t>(entries.size()));

  const std::uint64_t millis =
      static_cast<std::uint64_t>(created.days_since_epoch()) * 86'400'000ull;
  for (const auto& e : entries) {
    const auto& cert = *e.certificate;
    put_u32(out, kTrustedCertTag);
    const std::string alias =
        sanitize_alias(cert.subject().common_name().value_or("root")) + " [" +
        cert.short_id() + "]";
    put_utf(out, alias);
    put_u64(out, millis);
    put_utf(out, "X.509");
    put_u32(out, static_cast<std::uint32_t>(cert.der().size()));
    out.insert(out.end(), cert.der().begin(), cert.der().end());
  }

  const auto digest = integrity_digest(password, out);
  out.insert(out.end(), digest.begin(), digest.end());
  return out;
}

namespace {

Result<ParsedStore> parse_jks_impl(std::span<const std::uint8_t> data,
                                   std::string_view password) {
  if (data.size() < 12 + 20) {
    return Result<ParsedStore>::err("jks: file too short");
  }
  // Verify trailing integrity digest first.
  const auto body = data.first(data.size() - 20);
  const auto stored = data.last(20);
  const auto computed = integrity_digest(password, body);
  if (!std::equal(computed.begin(), computed.end(), stored.begin())) {
    return Result<ParsedStore>::err(
        "jks: integrity digest mismatch (wrong password or corrupt file)");
  }

  ByteCursor cur(body);
  if (cur.u32() != kMagic) {
    return Result<ParsedStore>::err("jks: bad magic");
  }
  const std::uint32_t version = cur.u32();
  if (version != kVersion2) {
    return Result<ParsedStore>::err("jks: unsupported version " +
                                    std::to_string(version));
  }
  const std::uint32_t count = cur.u32();

  ParsedStore out;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (!cur.need(4)) return Result<ParsedStore>::err("jks: truncated entry");
    const std::uint32_t tag = cur.u32();
    if (tag != kTrustedCertTag) {
      return Result<ParsedStore>::err(
          "jks: unsupported entry tag " + std::to_string(tag) +
          " (only trusted-certificate entries belong in a root store)");
    }
    if (!cur.need(2)) return Result<ParsedStore>::err("jks: truncated alias");
    const std::uint16_t alias_len = cur.u16();
    if (!cur.need(alias_len)) {
      return Result<ParsedStore>::err("jks: truncated alias bytes");
    }
    cur.bytes(alias_len);  // alias unused beyond framing
    if (!cur.need(8 + 2)) return Result<ParsedStore>::err("jks: truncated date");
    cur.u64();  // creation date
    const std::uint16_t type_len = cur.u16();
    if (!cur.need(type_len)) {
      return Result<ParsedStore>::err("jks: truncated cert type");
    }
    const auto type_bytes = cur.bytes(type_len);
    const std::string type(type_bytes.begin(), type_bytes.end());
    if (type != "X.509") {
      return Result<ParsedStore>::err("jks: unsupported certificate type '" +
                                      type + "'");
    }
    if (!cur.need(4)) return Result<ParsedStore>::err("jks: truncated length");
    const std::uint32_t cert_len = cur.u32();
    if (!cur.need(cert_len)) {
      return Result<ParsedStore>::err("jks: truncated certificate");
    }
    const auto der = cur.bytes(cert_len);
    auto cert = rs::x509::Certificate::parse(der);
    if (!cert) {
      out.warnings.push_back("jks: undecodable certificate skipped: " +
                             cert.error());
      continue;
    }
    TrustEntry entry;
    entry.certificate =
        std::make_shared<const rs::x509::Certificate>(std::move(cert).take());
    // JKS has no purpose restrictions: anchor for everything.
    for (TrustPurpose p : rs::store::kAllPurposes) {
      entry.trust_for(p).level = TrustLevel::kTrustedDelegator;
    }
    out.entries.push_back(std::move(entry));
  }
  if (cur.failed()) {
    return Result<ParsedStore>::err("jks: truncated store body");
  }
  if (cur.remaining() != 0) {
    return Result<ParsedStore>::err("jks: trailing bytes after last entry");
  }
  return out;
}

}  // namespace

Result<ParsedStore> parse_jks(std::span<const std::uint8_t> data,
                              std::string_view password) {
  rs::obs::Span span("formats/jks");
  auto result = parse_jks_impl(data, password);
  detail::note_parse(span, data.size(), result);
  return result;
}

}  // namespace rs::formats
