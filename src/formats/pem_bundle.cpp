#include "src/formats/pem_bundle.h"

#include "src/encoding/pem.h"
#include "src/formats/instrument.h"

namespace rs::formats {

using rs::store::TrustEntry;
using rs::store::TrustPurpose;
using rs::util::Result;

BundleTrustPolicy BundleTrustPolicy::multi_purpose() {
  return BundleTrustPolicy{{TrustPurpose::kServerAuth,
                            TrustPurpose::kEmailProtection,
                            TrustPurpose::kCodeSigning}};
}

BundleTrustPolicy BundleTrustPolicy::tls_only() {
  return BundleTrustPolicy{{TrustPurpose::kServerAuth}};
}

namespace {

Result<ParsedStore> parse_pem_bundle_impl(std::string_view text,
                                          const BundleTrustPolicy& policy) {
  const auto pem = rs::encoding::pem_parse_all(text);
  ParsedStore out;
  out.warnings = pem.errors;
  for (const auto& obj : pem.objects) {
    if (obj.label != "CERTIFICATE") {
      out.warnings.push_back("ignoring non-certificate PEM block '" +
                             obj.label + "'");
      continue;
    }
    auto parsed = rs::x509::Certificate::parse(obj.der);
    if (!parsed) {
      out.warnings.push_back("undecodable certificate skipped: " +
                             parsed.error());
      continue;
    }
    TrustEntry entry;
    entry.certificate = std::make_shared<const rs::x509::Certificate>(
        std::move(parsed).take());
    for (TrustPurpose p : policy.granted) {
      entry.trust_for(p).level = rs::store::TrustLevel::kTrustedDelegator;
    }
    out.entries.push_back(std::move(entry));
  }
  return out;
}

}  // namespace

Result<ParsedStore> parse_pem_bundle(std::string_view text,
                                     const BundleTrustPolicy& policy) {
  rs::obs::Span span("formats/pem_bundle");
  auto result = parse_pem_bundle_impl(text, policy);
  detail::note_parse(span, text.size(), result);
  return result;
}

std::string write_pem_bundle(const std::vector<TrustEntry>& entries) {
  std::string out;
  for (const auto& e : entries) {
    const auto cn = e.certificate->subject().common_name();
    out += "# ";
    out += cn.value_or("(unnamed root)");
    out += '\n';
    out += rs::encoding::pem_encode("CERTIFICATE", e.certificate->der());
  }
  return out;
}

PurposeBundles write_purpose_bundles(const std::vector<TrustEntry>& entries) {
  auto filtered = [&](TrustPurpose purpose) {
    std::vector<TrustEntry> subset;
    for (const auto& e : entries) {
      if (e.is_anchor_for(purpose)) subset.push_back(e);
    }
    return write_pem_bundle(subset);
  };
  PurposeBundles out;
  out.tls = filtered(TrustPurpose::kServerAuth);
  out.email = filtered(TrustPurpose::kEmailProtection);
  out.codesign = filtered(TrustPurpose::kCodeSigning);
  return out;
}

rs::util::Result<ParsedStore> parse_purpose_bundle(std::string_view text,
                                                   TrustPurpose purpose) {
  return parse_pem_bundle(text, BundleTrustPolicy{{purpose}});
}

}  // namespace rs::formats
