#include "src/formats/certdata.h"

#include <cstdio>
#include <map>
#include <optional>

#include "src/crypto/sha1.h"
#include "src/formats/instrument.h"
#include "src/util/hex.h"
#include "src/util/strings.h"

namespace rs::formats {

using rs::store::PurposeTrust;
using rs::store::TrustEntry;
using rs::store::TrustLevel;
using rs::store::TrustPurpose;
using rs::util::Result;

namespace {

// ---------------------------------------------------------------------------
// Tokenizer: certdata.txt is line-oriented.  An attribute line is
//   CKA_<NAME> <TYPE> <VALUE...>
// where MULTILINE_OCTAL values continue on following lines until END.
// ---------------------------------------------------------------------------

struct Attribute {
  std::string name;
  std::string type;
  std::string scalar;               // for one-line values
  std::vector<std::uint8_t> bytes;  // for MULTILINE_OCTAL
};

struct RawObject {
  std::vector<Attribute> attrs;

  const Attribute* find(std::string_view name) const {
    for (const auto& a : attrs) {
      if (a.name == name) return &a;
    }
    return nullptr;
  }
};

class LineCursor {
 public:
  explicit LineCursor(std::string_view text)
      : lines_(rs::util::split_lines(text)) {}

  bool done() const { return idx_ >= lines_.size(); }
  std::string_view peek() const { return lines_[idx_]; }
  std::string_view next() { return lines_[idx_++]; }
  std::size_t line_number() const { return idx_; }

 private:
  std::vector<std::string_view> lines_;
  std::size_t idx_ = 0;
};

bool is_noise(std::string_view line) {
  const std::string_view t = rs::util::trim(line);
  return t.empty() || t.front() == '#';
}

// Parses the octal continuation lines of a MULTILINE_OCTAL value.
Result<std::vector<std::uint8_t>> parse_octal_block(LineCursor& cur) {
  std::vector<std::uint8_t> out;
  while (!cur.done()) {
    const std::string_view line = rs::util::trim(cur.next());
    if (line == "END") return out;
    std::size_t i = 0;
    while (i < line.size()) {
      if (line[i] != '\\') {
        return Result<std::vector<std::uint8_t>>::err(
            "certdata: expected octal escape at line " +
            std::to_string(cur.line_number()));
      }
      if (line.size() - i < 4) {
        return Result<std::vector<std::uint8_t>>::err(
            "certdata: truncated octal escape at line " +
            std::to_string(cur.line_number()));
      }
      int v = 0;
      for (std::size_t d = 1; d <= 3; ++d) {
        const char c = line[i + d];
        if (c < '0' || c > '7') {
          return Result<std::vector<std::uint8_t>>::err(
              "certdata: bad octal digit at line " +
              std::to_string(cur.line_number()));
        }
        v = v * 8 + (c - '0');
      }
      if (v > 255) {
        return Result<std::vector<std::uint8_t>>::err(
            "certdata: octal escape out of range at line " +
            std::to_string(cur.line_number()));
      }
      out.push_back(static_cast<std::uint8_t>(v));
      i += 4;
    }
  }
  return Result<std::vector<std::uint8_t>>::err(
      "certdata: unterminated MULTILINE_OCTAL");
}

// Splits objects: a new object begins at each CKA_CLASS line.
Result<std::vector<RawObject>> lex_objects(std::string_view text) {
  std::vector<RawObject> objects;
  LineCursor cur(text);
  bool seen_begindata = false;
  RawObject current;
  bool in_object = false;

  auto flush = [&] {
    if (in_object) objects.push_back(std::move(current));
    current = RawObject{};
    in_object = false;
  };

  while (!cur.done()) {
    const std::string_view raw = cur.next();
    if (is_noise(raw)) continue;
    const std::string_view line = rs::util::trim(raw);
    if (line == "BEGINDATA") {
      seen_begindata = true;
      continue;
    }
    const auto tokens = rs::util::split_ws(line);
    if (tokens.empty()) continue;
    if (!rs::util::starts_with(tokens[0], "CKA_")) {
      return Result<std::vector<RawObject>>::err(
          "certdata: unexpected line " + std::to_string(cur.line_number()) +
          ": '" + std::string(line) + "'");
    }
    if (tokens.size() < 2) {
      return Result<std::vector<RawObject>>::err(
          "certdata: attribute missing type at line " +
          std::to_string(cur.line_number()));
    }
    Attribute attr;
    attr.name = std::string(tokens[0]);
    attr.type = std::string(tokens[1]);
    if (attr.name == "CKA_CLASS") flush(), in_object = true;

    if (tokens.size() >= 3 && tokens[2] == "MULTILINE_OCTAL") {
      auto bytes = parse_octal_block(cur);
      if (!bytes) return bytes.propagate<std::vector<RawObject>>();
      attr.bytes = std::move(bytes).take();
    } else if (attr.type == "MULTILINE_OCTAL") {
      auto bytes = parse_octal_block(cur);
      if (!bytes) return bytes.propagate<std::vector<RawObject>>();
      attr.bytes = std::move(bytes).take();
    } else if (attr.type == "UTF8") {
      // Quoted string: everything between the first and last '"'.
      const std::size_t open = line.find('"');
      const std::size_t close = line.rfind('"');
      if (open == std::string_view::npos || close <= open) {
        return Result<std::vector<RawObject>>::err(
            "certdata: malformed UTF8 value at line " +
            std::to_string(cur.line_number()));
      }
      attr.scalar = std::string(line.substr(open + 1, close - open - 1));
    } else {
      // Scalar: remaining tokens joined (usually exactly one).
      std::string rest;
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        if (!rest.empty()) rest += ' ';
        rest += std::string(tokens[i]);
      }
      attr.scalar = rest;
    }
    if (!in_object) {
      // Attributes before any CKA_CLASS (e.g. CVS_ID in old files) are
      // ignored, matching NSS's own parser behaviour.
      continue;
    }
    current.attrs.push_back(std::move(attr));
  }
  flush();
  if (!seen_begindata && !objects.empty()) {
    return Result<std::vector<RawObject>>::err(
        "certdata: missing BEGINDATA header");
  }
  return objects;
}

// ---------------------------------------------------------------------------
// Semantic layer.
// ---------------------------------------------------------------------------

std::optional<TrustLevel> parse_trust_level(std::string_view s) {
  if (s == "CKT_NSS_TRUSTED_DELEGATOR") return TrustLevel::kTrustedDelegator;
  if (s == "CKT_NSS_MUST_VERIFY_TRUST") return TrustLevel::kMustVerify;
  if (s == "CKT_NSS_NOT_TRUSTED") return TrustLevel::kDistrusted;
  // Legacy spellings seen in very old snapshots.
  if (s == "CKT_NETSCAPE_TRUSTED_DELEGATOR") return TrustLevel::kTrustedDelegator;
  if (s == "CKT_NETSCAPE_MUST_VERIFY_TRUST" || s == "CKT_NETSCAPE_VALID")
    return TrustLevel::kMustVerify;
  if (s == "CKT_NETSCAPE_UNTRUSTED") return TrustLevel::kDistrusted;
  return std::nullopt;
}

const char* trust_level_token(TrustLevel l) {
  switch (l) {
    case TrustLevel::kTrustedDelegator:
      return "CKT_NSS_TRUSTED_DELEGATOR";
    case TrustLevel::kMustVerify:
      return "CKT_NSS_MUST_VERIFY_TRUST";
    case TrustLevel::kDistrusted:
      return "CKT_NSS_NOT_TRUSTED";
  }
  return "CKT_NSS_MUST_VERIFY_TRUST";
}

// CKA_NSS_SERVER_DISTRUST_AFTER carries "YYMMDDHHMMSSZ" as octal bytes.
std::optional<rs::util::Date> parse_distrust_after(
    const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() != 13 || bytes.back() != 'Z') return std::nullopt;
  auto digits = [&](std::size_t pos) {
    return (bytes[pos] - '0') * 10 + (bytes[pos + 1] - '0');
  };
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    if (bytes[i] < '0' || bytes[i] > '9') return std::nullopt;
  }
  const int yy = digits(0);
  const int year = yy >= 50 ? 1900 + yy : 2000 + yy;
  return rs::util::Date::from_civil({year, digits(2), digits(4)});
}

std::string encode_distrust_after(rs::util::Date d) {
  const auto c = d.civil();
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%02d%02d%02d000000Z", c.year % 100, c.month,
                c.day);
  return buf;
}

// Labels come from certificate subjects, i.e. attacker-influenced bytes.
// Keep only printable ASCII and drop '"' so the emitted CKA_LABEL line can
// always be re-read by the quoted-string lexer above.
std::string sanitize_label(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    const auto u = static_cast<unsigned char>(c);
    if (u >= 0x20 && u < 0x7F && c != '"') out.push_back(c);
  }
  if (out.empty()) out = "Unnamed Root";
  return out;
}

std::string octal_encode(std::span<const std::uint8_t> bytes) {
  std::string out;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "\\%03o", bytes[i]);
    out += buf;
    if ((i + 1) % 16 == 0 && i + 1 != bytes.size()) out += '\n';
  }
  out += "\nEND\n";
  return out;
}

Result<ParsedStore> parse_certdata_impl(std::string_view text) {
  auto objects = lex_objects(text);
  if (!objects) return objects.propagate<ParsedStore>();

  ParsedStore out;

  // Pass 1: certificates, keyed by SHA-1 of DER.
  struct PendingCert {
    std::shared_ptr<const rs::x509::Certificate> cert;
    bool has_trust = false;
  };
  std::map<std::string, PendingCert> by_sha1;  // hex sha1 -> cert
  std::vector<std::string> order;              // preserve file order

  for (const auto& obj : objects.value()) {
    const Attribute* cls = obj.find("CKA_CLASS");
    if (cls == nullptr) continue;
    if (cls->scalar != "CKO_CERTIFICATE") continue;
    const Attribute* value = obj.find("CKA_VALUE");
    if (value == nullptr || value->bytes.empty()) {
      out.warnings.push_back("certificate object without CKA_VALUE skipped");
      continue;
    }
    auto parsed = rs::x509::Certificate::parse(value->bytes);
    if (!parsed) {
      out.warnings.push_back("undecodable certificate skipped: " +
                             parsed.error());
      continue;
    }
    auto cert = std::make_shared<const rs::x509::Certificate>(
        std::move(parsed).take());
    const std::string sha1_hex = rs::util::hex_encode(cert->sha1());
    if (by_sha1.contains(sha1_hex)) {
      out.warnings.push_back("duplicate certificate object for SHA1 " +
                             sha1_hex);
      continue;
    }
    by_sha1.emplace(sha1_hex, PendingCert{std::move(cert), false});
    order.push_back(sha1_hex);
  }

  // Pass 2: trust objects matched by CKA_CERT_SHA1_HASH.
  std::map<std::string, TrustEntry> entries;
  for (const auto& obj : objects.value()) {
    const Attribute* cls = obj.find("CKA_CLASS");
    if (cls == nullptr) continue;
    if (cls->scalar != "CKO_NSS_TRUST" && cls->scalar != "CKO_NETSCAPE_TRUST")
      continue;
    const Attribute* sha1 = obj.find("CKA_CERT_SHA1_HASH");
    if (sha1 == nullptr || sha1->bytes.empty()) {
      out.warnings.push_back("trust object without SHA1 hash skipped");
      continue;
    }
    const std::string sha1_hex = rs::util::hex_encode(sha1->bytes);
    const auto it = by_sha1.find(sha1_hex);
    if (it == by_sha1.end()) {
      out.warnings.push_back("trust object references unknown SHA1 " +
                             sha1_hex);
      continue;
    }
    if (it->second.has_trust) {
      out.warnings.push_back("duplicate trust object for SHA1 " + sha1_hex);
      continue;
    }
    it->second.has_trust = true;

    TrustEntry entry;
    entry.certificate = it->second.cert;
    struct PurposeAttr {
      const char* name;
      TrustPurpose purpose;
    };
    static constexpr PurposeAttr kPurposeAttrs[] = {
        {"CKA_TRUST_SERVER_AUTH", TrustPurpose::kServerAuth},
        {"CKA_TRUST_EMAIL_PROTECTION", TrustPurpose::kEmailProtection},
        {"CKA_TRUST_CODE_SIGNING", TrustPurpose::kCodeSigning},
    };
    for (const auto& pa : kPurposeAttrs) {
      if (const Attribute* a = obj.find(pa.name)) {
        const auto level = parse_trust_level(a->scalar);
        if (!level) {
          out.warnings.push_back(std::string("unknown trust level '") +
                                 a->scalar + "' for " + pa.name);
          continue;
        }
        entry.trust_for(pa.purpose).level = *level;
      }
    }
    if (const Attribute* a = obj.find("CKA_NSS_SERVER_DISTRUST_AFTER")) {
      if (!a->bytes.empty()) {
        const auto date = parse_distrust_after(a->bytes);
        if (date) {
          entry.trust_for(TrustPurpose::kServerAuth).distrust_after = date;
        } else {
          out.warnings.push_back("malformed CKA_NSS_SERVER_DISTRUST_AFTER for " +
                                 sha1_hex);
        }
      }
      // CK_BBOOL CK_FALSE means "no cutoff" — nothing to record.
    }
    entries.emplace(sha1_hex, std::move(entry));
  }

  // Emit in file order; certificates without trust objects default to
  // must-verify everywhere (NSS treats them as untrusted intermediates).
  for (const auto& sha1_hex : order) {
    const auto it = entries.find(sha1_hex);
    if (it != entries.end()) {
      out.entries.push_back(it->second);
    } else {
      out.warnings.push_back("certificate without trust object: " + sha1_hex);
      TrustEntry entry;
      entry.certificate = by_sha1.at(sha1_hex).cert;
      out.entries.push_back(std::move(entry));
    }
  }
  return out;
}

}  // namespace

Result<ParsedStore> parse_certdata(std::string_view text) {
  rs::obs::Span span("formats/certdata");
  auto result = parse_certdata_impl(text);
  detail::note_parse(span, text.size(), result);
  return result;
}

std::string write_certdata(const std::vector<TrustEntry>& entries) {
  std::string out;
  out +=
      "# This file is synthesized by rs::formats::write_certdata.\n"
      "# Grammar-compatible with NSS certdata.txt.\n"
      "BEGINDATA\n\n";
  for (const auto& e : entries) {
    const auto& cert = *e.certificate;
    const std::string label = sanitize_label(
        cert.subject().common_name().value_or(
            cert.subject().organization().value_or("Unnamed Root")));

    out += "# Certificate \"" + label + "\"\n";
    out += "CKA_CLASS CK_OBJECT_CLASS CKO_CERTIFICATE\n";
    out += "CKA_TOKEN CK_BBOOL CK_TRUE\n";
    out += "CKA_PRIVATE CK_BBOOL CK_FALSE\n";
    out += "CKA_LABEL UTF8 \"" + label + "\"\n";
    out += "CKA_CERTIFICATE_TYPE CK_CERTIFICATE_TYPE CKC_X_509\n";
    out += "CKA_VALUE MULTILINE_OCTAL\n";
    out += octal_encode(cert.der());

    out += "\n# Trust for \"" + label + "\"\n";
    out += "CKA_CLASS CK_OBJECT_CLASS CKO_NSS_TRUST\n";
    out += "CKA_TOKEN CK_BBOOL CK_TRUE\n";
    out += "CKA_LABEL UTF8 \"" + label + "\"\n";
    out += "CKA_CERT_SHA1_HASH MULTILINE_OCTAL\n";
    out += octal_encode(cert.sha1());
    out += "CKA_CERT_MD5_HASH MULTILINE_OCTAL\n";
    out += octal_encode(cert.md5());

    struct PurposeAttr {
      const char* name;
      TrustPurpose purpose;
    };
    static constexpr PurposeAttr kPurposeAttrs[] = {
        {"CKA_TRUST_SERVER_AUTH", TrustPurpose::kServerAuth},
        {"CKA_TRUST_EMAIL_PROTECTION", TrustPurpose::kEmailProtection},
        {"CKA_TRUST_CODE_SIGNING", TrustPurpose::kCodeSigning},
    };
    for (const auto& pa : kPurposeAttrs) {
      out += std::string(pa.name) + " CK_TRUST " +
             trust_level_token(e.trust_for(pa.purpose).level) + "\n";
    }
    const auto& server = e.trust_for(TrustPurpose::kServerAuth);
    if (server.distrust_after) {
      const std::string encoded = encode_distrust_after(*server.distrust_after);
      out += "CKA_NSS_SERVER_DISTRUST_AFTER MULTILINE_OCTAL\n";
      out += octal_encode(
          {reinterpret_cast<const std::uint8_t*>(encoded.data()),
           encoded.size()});
    } else {
      out += "CKA_NSS_SERVER_DISTRUST_AFTER CK_BBOOL CK_FALSE\n";
    }
    out += "CKA_TRUST_STEP_UP_APPROVED CK_BBOOL CK_FALSE\n\n";
  }
  return out;
}

}  // namespace rs::formats
