// Format sniffing: load any root-store file by content inspection.
//
// The study's collection pipeline had to consume whatever each provider
// ships — certdata.txt, PEM bundles, JKS keystores, RSTS documents.  This
// helper centralizes the dispatch every tool needs: look at the bytes,
// pick the parser, return the normalized store.
#pragma once

#include <span>
#include <string>
#include <string_view>

#include "src/formats/certdata.h"

namespace rs::formats {

/// Formats detect_store_format can report.
enum class StoreFormat {
  kCertdata,
  kPemBundle,
  kJks,
  kRsts,
  kUnknown,
};

const char* to_string(StoreFormat f) noexcept;

/// Inspects content bytes and guesses the serialization.
[[nodiscard]] StoreFormat detect_store_format(std::string_view content);

/// Parses `content` with the detected parser.  kUnknown falls back to the
/// PEM-bundle parser (matching how TLS tooling treats mystery files), with
/// `multi_purpose` deciding the granted purposes for purpose-less formats.
[[nodiscard]] rs::util::Result<ParsedStore> parse_any_store(std::string_view content,
                                              bool multi_purpose = true);

/// Reads the file at `path` and parses it.  I/O failures are errors.
[[nodiscard]] rs::util::Result<ParsedStore> load_any_store(const std::string& path,
                                             bool multi_purpose = true);

}  // namespace rs::formats
