// Linux-style PEM bundle reader/writer.
//
// Debian/Ubuntu, Alpine and AmazonLinux ship their root store as a single
// concatenated PEM file (e.g. /etc/ssl/certs/ca-certificates.crt).  The
// format carries *no trust metadata*: presence means full trust for every
// purpose the consuming application assumes — the paper's "rigid on-or-off
// trust" pain point (§6).  The parser therefore maps each certificate to
// anchors for a caller-chosen purpose set.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/formats/certdata.h"
#include "src/store/trust.h"
#include "src/util/result.h"

namespace rs::formats {

/// Which purposes a bare bundle is interpreted as granting.
struct BundleTrustPolicy {
  /// Multi-purpose (historical ca-certificates): TLS + email + code signing.
  static BundleTrustPolicy multi_purpose();
  /// Single-purpose TLS (modern tls-ca-bundle.pem).
  static BundleTrustPolicy tls_only();

  std::vector<rs::store::TrustPurpose> granted;
};

/// Parses a PEM bundle into trust entries, applying `policy` to every
/// certificate.  Undecodable blocks become warnings.
[[nodiscard]] rs::util::Result<ParsedStore> parse_pem_bundle(std::string_view text,
                                               const BundleTrustPolicy& policy);

/// Serializes entries as a bundle.  Only the certificates are written —
/// trust metadata is *lost by design*, mirroring the real format; callers
/// exercising the §6 fidelity analysis rely on this lossiness.
[[nodiscard]] std::string write_pem_bundle(const std::vector<rs::store::TrustEntry>& entries);

/// The §7 short-term fix: single-purpose bundles, one per trust purpose,
/// as recently adopted by RHEL and AmazonLinux
/// (tls-ca-bundle.pem / email-ca-bundle.pem / objsign-ca-bundle.pem).
/// Each bundle contains only the roots that are anchors for that purpose,
/// so a code-signing consumer can no longer misuse TLS-only roots.
struct PurposeBundles {
  std::string tls;       // tls-ca-bundle.pem
  std::string email;     // email-ca-bundle.pem
  std::string codesign;  // objsign-ca-bundle.pem
};
[[nodiscard]] PurposeBundles write_purpose_bundles(
    const std::vector<rs::store::TrustEntry>& entries);

/// Parses one purpose bundle back, granting only `purpose`.
[[nodiscard]] rs::util::Result<ParsedStore> parse_purpose_bundle(
    std::string_view text, rs::store::TrustPurpose purpose);

}  // namespace rs::formats
