#include "src/formats/signed_envelope.h"

#include <algorithm>

#include "src/asn1/reader.h"
#include "src/asn1/writer.h"
#include "src/crypto/hmac.h"
#include "src/crypto/sha256.h"
#include "src/formats/instrument.h"

namespace rs::formats {

using rs::util::Result;

namespace {

/// Derives the HMAC key for a signer: SHA-256("envelope:" signer seed).
rs::crypto::Sha256Digest signer_key(std::string_view signer,
                                    std::uint64_t key_seed) {
  rs::crypto::Sha256 h;
  constexpr std::string_view kTag = "envelope:";
  h.update({reinterpret_cast<const std::uint8_t*>(kTag.data()), kTag.size()});
  h.update(
      {reinterpret_cast<const std::uint8_t*>(signer.data()), signer.size()});
  std::uint8_t seed_bytes[8];
  for (int i = 0; i < 8; ++i) {
    seed_bytes[i] = static_cast<std::uint8_t>(key_seed >> (8 * i));
  }
  h.update({seed_bytes, 8});
  return h.finish();
}

}  // namespace

std::vector<std::uint8_t> seal_envelope(std::span<const std::uint8_t> payload,
                                        std::string_view signer,
                                        std::uint64_t key_seed) {
  const auto key = signer_key(signer, key_seed);
  const auto mac = rs::crypto::hmac_sha256(key, payload);

  rs::asn1::Writer body;
  body.add_small_integer(1);
  body.add_utf8_string(signer);
  body.add_octet_string(payload);
  body.add_octet_string(mac);
  rs::asn1::Writer top;
  top.add_sequence(body);
  return std::move(top).take();
}

Result<Envelope> open_envelope(std::span<const std::uint8_t> der,
                               std::uint64_t key_seed) {
  rs::asn1::Reader top(der);
  auto seq = top.read_sequence();
  if (!seq) return seq.propagate<Envelope>();
  auto version = seq.value().read_small_integer();
  if (!version) return version.propagate<Envelope>();
  if (version.value() != 1) {
    return Result<Envelope>::err("envelope: unsupported version " +
                                 std::to_string(version.value()));
  }
  auto signer = seq.value().read_string();
  if (!signer) return signer.propagate<Envelope>();
  auto payload = seq.value().read_octet_string();
  if (!payload) return payload.propagate<Envelope>();
  auto signature = seq.value().read_octet_string();
  if (!signature) return signature.propagate<Envelope>();
  if (!seq.value().at_end()) {
    return Result<Envelope>::err("envelope: trailing data");
  }

  const auto key = signer_key(signer.value(), key_seed);
  const auto expected = rs::crypto::hmac_sha256(key, payload.value());
  if (signature.value().size() != expected.size() ||
      !std::equal(expected.begin(), expected.end(),
                  signature.value().begin())) {
    return Result<Envelope>::err(
        "envelope: signature verification failed (tampered content or wrong "
        "signer key)");
  }
  return Envelope{std::move(signer).take(), std::move(payload).take()};
}

SignedAuthRootBlob write_authroot_signed(
    const std::vector<rs::store::TrustEntry>& entries, std::string_view signer,
    std::uint64_t key_seed) {
  AuthRootBlob inner = write_authroot(entries);
  SignedAuthRootBlob out;
  out.sealed_stl = seal_envelope(inner.stl, signer, key_seed);
  out.certs = std::move(inner.certs);
  return out;
}

Result<ParsedStore> parse_authroot_signed(
    std::span<const std::uint8_t> sealed_stl, const CertByHash& certs,
    std::uint64_t key_seed) {
  rs::obs::Span span("formats/authroot_signed");
  auto envelope = open_envelope(sealed_stl, key_seed);
  if (!envelope) return envelope.propagate<ParsedStore>();
  return parse_authroot(envelope.value().payload, certs);
}

}  // namespace rs::formats
