// Internal helper wiring the format decoders into rs_obs.
//
// Every public parse entry point opens a "formats/<name>" span and, on
// success, feeds the shared decoder counters (bytes decoded, certificates
// decoded, parse warnings).  All of it is a single atomic load when
// instrumentation is disabled.  Not part of the public formats API.
#pragma once

#include <cstddef>

#include "src/formats/certdata.h"
#include "src/obs/registry.h"
#include "src/obs/span.h"
#include "src/util/result.h"

namespace rs::formats::detail {

inline void note_parse(rs::obs::Span& span, std::size_t bytes,
                       const rs::util::Result<ParsedStore>& result) {
  auto& reg = rs::obs::Registry::global();
  if (!reg.enabled()) return;
  reg.counter("formats.bytes_decoded").add(bytes);
  if (!result.ok()) {
    reg.counter("formats.parse_failures").increment();
    return;
  }
  span.set_items(result.value().entries.size());
  reg.counter("formats.certs_decoded").add(result.value().entries.size());
  reg.counter("formats.parse_warnings").add(result.value().warnings.size());
}

}  // namespace rs::formats::detail
