// RSTS — a portable root-store format with full trust fidelity (§7).
//
// The paper's discussion argues that NSS derivatives fail because the
// formats they copy into (PEM bundles, cert directories, JKS) cannot carry
// per-purpose trust or partial distrust, and asks for "more modern formats,
// while maintaining ease of use for developers".  RSTS ("Root Store Trust
// Serialization") is this repository's answer: a line-oriented, versioned,
// diff-friendly text format that round-trips everything the canonical
// TrustEntry model expresses.
//
//   RSTS 1
//   # comment
//   root
//     label Example Web Root CA
//     sha256 9f86d081884c7d65...
//     cert MIIBIjANBgkqhkiG9w0BAQ...      (base64 DER, single logical value)
//     trust server-auth trusted-delegator distrust-after=2020-01-01
//     trust email-protection must-verify
//     trust code-signing distrusted
//   end
//
// Rules: UTF-8; indentation is cosmetic; unknown keys inside a root block
// are warnings (forward compatibility); `sha256` is a MANDATORY integrity
// pin — an absent or mismatching pin rejects the entry, so no byte flip in
// a document can smuggle an unpinned certificate through; omitted `trust`
// lines default to must-verify; the format never implies trust that is not
// spelled out (the opposite of the PEM-bundle failure mode).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/formats/certdata.h"
#include "src/store/trust.h"
#include "src/util/result.h"

namespace rs::formats {

/// Current RSTS version emitted by write_rsts.
inline constexpr int kRstsVersion = 1;

/// Serializes entries with full trust fidelity.
[[nodiscard]] std::string write_rsts(const std::vector<rs::store::TrustEntry>& entries);

/// Parses an RSTS document.  Grammar errors (bad header, truncated block)
/// fail the parse; per-entry problems (bad base64, sha256 mismatch,
/// unknown keys) become warnings and skip the entry or key.
[[nodiscard]] rs::util::Result<ParsedStore> parse_rsts(std::string_view text);

}  // namespace rs::formats
