// Signed update envelopes — the PKCS#7/CMS layer around authroot.stl.
//
// Windows does not trust a bare CTL: authrootstl.cab carries a PKCS#7
// SignedData whose signature Microsoft's update client verifies before the
// roots inside are believed.  This module models that layer with the same
// substitution the certificate builder uses (DESIGN.md): the signature is
// HMAC-SHA256 keyed by a signer seed instead of RSA-over-PKCS#7, which
// preserves the behaviour that matters to the pipeline — a tampered or
// mis-keyed update is rejected before parsing.
//
//   SignedEnvelope ::= SEQUENCE {
//     version   INTEGER (1),
//     signer    UTF8String,       -- e.g. "Microsoft Root Program"
//     content   OCTET STRING,     -- the payload (a CTL, a certdata, ...)
//     signature OCTET STRING }    -- HMAC-SHA256(signer key, content)
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/formats/authroot_stl.h"
#include "src/util/result.h"

namespace rs::formats {

/// A verified, opened envelope.
struct Envelope {
  std::string signer;
  std::vector<std::uint8_t> payload;
};

/// Seals `payload` under the signer's key seed.
[[nodiscard]] std::vector<std::uint8_t> seal_envelope(std::span<const std::uint8_t> payload,
                                        std::string_view signer,
                                        std::uint64_t key_seed);

/// Opens and verifies an envelope; a wrong key seed, altered payload, or
/// malformed DER is an error.
[[nodiscard]] rs::util::Result<Envelope> open_envelope(std::span<const std::uint8_t> der,
                                         std::uint64_t key_seed);

/// Convenience: authroot blob with the CTL sealed (what Windows actually
/// downloads) plus the certificate cache.
struct SignedAuthRootBlob {
  std::vector<std::uint8_t> sealed_stl;
  CertByHash certs;
};
[[nodiscard]] SignedAuthRootBlob write_authroot_signed(
    const std::vector<rs::store::TrustEntry>& entries, std::string_view signer,
    std::uint64_t key_seed);

/// Verifies the envelope, then parses the CTL inside.
[[nodiscard]] rs::util::Result<ParsedStore> parse_authroot_signed(
    std::span<const std::uint8_t> sealed_stl, const CertByHash& certs,
    std::uint64_t key_seed);

}  // namespace rs::formats
