// Microsoft authroot.stl-style certificate trust list (CTL).
//
// Windows Automatic Root Updates ship authroot.stl: a signed list of trust
// anchors identified by SHA-1, each carrying Microsoft-specific properties —
// the EKUs the root is trusted for, EKUs it is disallowed for, a
// "DisallowedCertAfter" date (partial distrust: certificates issued after
// the date are rejected), and a full-disallow flag.  Full certificates are
// *not* embedded; Windows fetches them by SHA-1 from a separate URL.
//
// We implement a DER CTL that mirrors those semantics (the real container
// adds a PKCS#7 signature envelope and Microsoft OID property bags around
// the same payload — see DESIGN.md substitutions):
//
//   AuthRootList  ::= SEQUENCE {
//     version        INTEGER (1),
//     entries        SEQUENCE OF TrustedSubject }
//   TrustedSubject ::= SEQUENCE {
//     subjectId      OCTET STRING (SHA-1 of certificate),
//     ekus           SEQUENCE OF OBJECT IDENTIFIER,        -- trusted purposes
//     disallowed [0] SEQUENCE OF OBJECT IDENTIFIER OPTIONAL,
//     disallowAfter [1] UTCTime/GeneralizedTime OPTIONAL,  -- partial distrust
//     fullyDisallowed [2] BOOLEAN OPTIONAL }
//
// Like Windows, parsing needs a resolver that produces certificate DER for
// a SHA-1 id (our CertByHash map plays the role of the download cache).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/crypto/digest.h"
#include "src/formats/certdata.h"
#include "src/store/trust.h"
#include "src/util/result.h"

namespace rs::formats {

/// The sidecar "certificate cache": SHA-1 (hex, lowercase) -> DER.
using CertByHash = std::map<std::string, std::vector<std::uint8_t>>;

/// A serialized CTL plus the cache needed to resolve it.
struct AuthRootBlob {
  std::vector<std::uint8_t> stl;  // the DER CTL
  CertByHash certs;               // full certificates, keyed by SHA-1 hex
};

/// Serializes entries to an AuthRootBlob.  Trust mapping:
///  - anchor purposes  -> `ekus`
///  - distrusted purposes -> `disallowed`
///  - TLS distrust_after -> `disallowAfter`
[[nodiscard]] AuthRootBlob write_authroot(const std::vector<rs::store::TrustEntry>& entries);

/// Parses a CTL, resolving certificates via `certs`.  Entries whose
/// certificate cannot be resolved (or fails to parse) become warnings —
/// exactly the failure mode of a stale Windows download cache.
[[nodiscard]] rs::util::Result<ParsedStore> parse_authroot(
    std::span<const std::uint8_t> stl, const CertByHash& certs);

}  // namespace rs::formats
