// Java KeyStore (JKS) v2 reader/writer — the real binary layout.
//
// Oracle ships Java's default roots as a JKS file (make/data/cacerts); the
// paper extracted them with keytool.  This module replaces keytool: it
// implements the JKS v2 container exactly — 0xFEEDFEED magic, big-endian
// framing, modified-UTF-8 aliases, trusted-certificate entries, and the
// trailing SHA-1 integrity digest keyed by
// password-UTF-16BE || "Mighty Aphrodite" || data.
//
// Only trusted-certificate entries (tag 2) are modelled; private-key
// entries (tag 1) never appear in a root store and are rejected.  JKS
// carries no purpose restrictions, so every entry becomes an anchor for all
// purposes (Java's default store has no additional trust contexts, §3).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/formats/certdata.h"
#include "src/store/trust.h"
#include "src/util/date.h"
#include "src/util/result.h"

namespace rs::formats {

/// keytool's default password for cacerts.
inline constexpr std::string_view kDefaultJksPassword = "changeit";

/// Serializes entries as a JKS v2 trusted-certificate keystore.
/// Aliases are "<sanitized-cn> [<short-fp>]"; `created` stamps every entry.
[[nodiscard]] std::vector<std::uint8_t> write_jks(
    const std::vector<rs::store::TrustEntry>& entries,
    rs::util::Date created,
    std::string_view password = kDefaultJksPassword);

/// Parses a JKS v2 keystore and verifies the integrity digest against
/// `password`; digest mismatch (wrong password or corruption) is an error.
[[nodiscard]] rs::util::Result<ParsedStore> parse_jks(
    std::span<const std::uint8_t> data,
    std::string_view password = kDefaultJksPassword);

}  // namespace rs::formats
