// Whole-dataset persistence: a StoreDatabase as a directory tree.
//
// The paper's artifact is its 619-snapshot dataset; this module lets users
// of this library persist and reload the equivalent.  Layout:
//
//   <dir>/MANIFEST            "RSDS 1" + one line per snapshot:
//                             <provider>\t<date>\t<version>\t<relative-path>
//   <dir>/<provider>/<date>[-<n>].rsts     one RSTS file per snapshot
//
// RSTS (formats/portable.h) is the on-disk format because it is the only
// one that round-trips the full trust model.  Loading verifies the manifest
// against the files; missing or unparseable snapshots fail the load (a
// dataset is an artifact, not a best-effort feed).
#pragma once

#include <string>

#include "src/store/database.h"
#include "src/util/result.h"

namespace rs::formats {

/// Writes `db` under `dir` (created if absent).  Returns an error on any
/// filesystem failure; on success the directory contains a MANIFEST plus
/// one RSTS file per snapshot.
[[nodiscard]] rs::util::Result<std::monostate> write_dataset(
    const rs::store::StoreDatabase& db, const std::string& dir);

/// Loads a dataset written by write_dataset.
[[nodiscard]] rs::util::Result<rs::store::StoreDatabase> load_dataset(const std::string& dir);

}  // namespace rs::formats
