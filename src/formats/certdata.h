// NSS certdata.txt reader/writer (PKCS#11 object grammar).
//
// Since 2000, NSS has shipped its trust anchors as a text file of PKCS#11
// objects: CKO_CERTIFICATE objects carrying raw DER in MULTILINE_OCTAL, and
// CKO_NSS_TRUST objects carrying per-purpose trust levels keyed by
// SHA-1/MD5 hash plus issuer+serial.  Partial distrust (the Symantec
// mechanism, NSS 3.53+) appears as CKA_NSS_SERVER_DISTRUST_AFTER.
//
// The parser is tolerant of comments and blank lines (real certdata.txt is
// full of both), matches trust objects to certificates by SHA-1 hash, and
// reports unmatched or contradictory objects as warnings.  The writer emits
// the same grammar, so write(parse(x)) is semantically identity (tested).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/store/trust.h"
#include "src/util/result.h"

namespace rs::formats {

/// Outcome of parsing a provider file: normalized entries + diagnostics.
struct ParsedStore {
  std::vector<rs::store::TrustEntry> entries;
  /// Non-fatal anomalies (unmatched trust objects, undecodable certs, ...).
  std::vector<std::string> warnings;
};

/// Parses a certdata.txt body.  Fails only on grammar-level corruption;
/// object-level problems become warnings and the object is skipped.
[[nodiscard]] rs::util::Result<ParsedStore> parse_certdata(std::string_view text);

/// Serializes entries to certdata.txt format (one CKO_CERTIFICATE plus one
/// CKO_NSS_TRUST object per entry, BEGINDATA header, octal-encoded DER).
[[nodiscard]] std::string write_certdata(const std::vector<rs::store::TrustEntry>& entries);

}  // namespace rs::formats
