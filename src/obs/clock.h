// Pluggable clocks for the observability layer.
//
// Production instrumentation reads a monotonic steady clock; tests inject a
// FakeClock whose readings are fully scripted, so span trees and serialized
// trace output are exactly reproducible (see docs/OBSERVABILITY.md).  The
// registry never owns its clock: clocks outlive the registry they are
// installed into (the default SteadyClock is a process-lifetime static).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace rs::obs {

using TimeNs = std::uint64_t;

/// Abstract monotonic time source.  Implementations must be thread-safe.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual TimeNs now_ns() const = 0;
};

/// Production clock: std::chrono::steady_clock, nanosecond ticks.
class SteadyClock final : public Clock {
 public:
  TimeNs now_ns() const override {
    return static_cast<TimeNs>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
};

/// Deterministic test clock: every now_ns() call returns the current value
/// and then advances it by a fixed step, so the k-th query is
/// start + k*step regardless of wall time.  The query counter doubles as
/// the disabled-mode probe: instrumentation that is off must never read
/// the clock.
class FakeClock final : public Clock {
 public:
  explicit FakeClock(TimeNs start = 0, TimeNs step_ns = 0)
      : now_(start), step_(step_ns) {}

  // memory-order: relaxed — scripted test clock: readings only need to be
  // atomic increments, and tests that assert on exact values advance or
  // query it from a single thread.
  TimeNs now_ns() const override {
    calls_.fetch_add(1, std::memory_order_relaxed);
    return now_.fetch_add(step_, std::memory_order_relaxed);
  }

  // memory-order: relaxed — see now_ns().
  void advance(TimeNs ns) { now_.fetch_add(ns, std::memory_order_relaxed); }
  void set(TimeNs ns) { now_.store(ns, std::memory_order_relaxed); }
  /// Total now_ns() queries observed (0 while instrumentation is disabled).
  std::uint64_t calls() const {
    // memory-order: relaxed — monotonic probe counter.
    return calls_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::atomic<TimeNs> now_;
  TimeNs step_;
  mutable std::atomic<std::uint64_t> calls_{0};
};

}  // namespace rs::obs
