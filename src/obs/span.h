// RAII trace spans with per-thread parent linkage.
//
// A Span measures one pipeline stage: construction reads the registry
// clock and links to the innermost live span on the same thread;
// destruction records a SpanRecord with the measured duration.  When the
// registry is disabled, construction is a single relaxed atomic load and
// destruction is a null check — no clock query, no allocation, no lock
// (enforced by tests/obs/obs_disabled_test.cpp).
//
// Span names should be 'layer/stage' literals ("formats/certdata",
// "jaccard/pairs", "report/table4"); the registry aggregates equal names
// into per-stage metrics.  The name must outlive the span (string
// literals always do; the record takes a copy only when the span ends).
#pragma once

#include <cstdint>
#include <string_view>

#include "src/obs/registry.h"

namespace rs::obs {

class Span {
 public:
  /// Opens a span on Registry::global().
  explicit Span(std::string_view name) : Span(Registry::global(), name) {}

  Span(Registry& registry, std::string_view name) {
    if (!registry.enabled()) return;
    registry_ = &registry;
    name_ = name;
    id_ = registry.next_span_id();
    parent_ = exchange_current(id_);
    start_ns_ = registry.clock().now_ns();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() {
    if (registry_ == nullptr) return;
    SpanRecord record;
    record.name = std::string(name_);
    record.id = id_;
    record.parent = parent_;
    record.thread = registry_->thread_index();
    record.start_ns = start_ns_;
    record.duration_ns = registry_->clock().now_ns() - start_ns_;
    record.items = items_;
    exchange_current(parent_);
    registry_->record_span(std::move(record));
  }

  /// Attaches a workload size (certificates decoded, pairs compared,
  /// iterations run) to the record.  No-op while disabled.
  void set_items(std::uint64_t items) noexcept {
    if (registry_ != nullptr) items_ = items;
  }
  void add_items(std::uint64_t items) noexcept {
    if (registry_ != nullptr) items_ += items;
  }

  /// True when this span is live (registry was enabled at construction).
  bool recording() const noexcept { return registry_ != nullptr; }

 private:
  // The innermost live span id on this thread; swapping keeps nesting
  // correct even when spans on the same thread interleave with pool tasks.
  static std::uint64_t exchange_current(std::uint64_t id) noexcept {
    thread_local std::uint64_t tls_current_span = 0;
    const std::uint64_t previous = tls_current_span;
    tls_current_span = id;
    return previous;
  }

  Registry* registry_ = nullptr;
  std::string_view name_;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  TimeNs start_ns_ = 0;
  std::uint64_t items_ = 0;
};

}  // namespace rs::obs
