#include "src/obs/registry.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace rs::obs {

namespace {

const SteadyClock& default_clock() {
  static const SteadyClock clock;
  return clock;
}

// Thread-index slot: pairs the assigned index with the epoch it was
// assigned in, so Registry::reset() can restart numbering from zero
// without touching other threads' storage.
struct ThreadSlot {
  std::uint64_t epoch = ~std::uint64_t{0};
  std::uint32_t index = 0;
};

thread_local ThreadSlot tls_thread_slot;

// Minimal JSON string escaping: span/counter names are ASCII identifiers
// in practice, but arbitrary bytes must not corrupt the document.
void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

// trace_event timestamps are microseconds; emit with fixed .3 precision so
// FakeClock-driven output is byte-stable.
void append_micros(std::string& out, TimeNs ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += buf;
}

}  // namespace

void Counter::add(std::uint64_t delta) noexcept {
  if (!owner_->enabled()) return;
  // memory-order: relaxed — monotonic statistic with no ordering contract;
  // readers snapshot via value().
  value_.fetch_add(delta, std::memory_order_relaxed);
}

Registry& Registry::global() {
  static Registry* instance = [] {
    auto* reg = new Registry();
    // Startup-only read before any worker thread exists; no setenv racer.
    const char* env = std::getenv("ROOTSTORE_TRACE");  // NOLINT(concurrency-mt-unsafe)
    if (env != nullptr && env[0] != '\0') reg->enable();
    return reg;
  }();
  return *instance;
}

void Registry::enable(const Clock* clock) {
  // memory-order: release — publishes the clock object to probe threads,
  // pairing with the acquire load in clock().  The enabled flag itself can
  // stay relaxed: a probe that sees it early still loads a valid pointer
  // (clock_ is written first and never reverts to null).
  clock_.store(clock != nullptr ? clock : &default_clock(),
               std::memory_order_release);
  enabled_.store(true, std::memory_order_relaxed);
}

void Registry::reset() {
  const rs::util::MutexLock lock(mutex_);
  // memory-order: relaxed — reset is a quiescent-point operation (tests and
  // CLI call it between phases); concurrent probes would only re-observe
  // zeroed statistics, never torn state.
  for (auto& c : counter_storage_) {
    c->value_.store(0, std::memory_order_relaxed);
  }
  gauges_.clear();
  spans_.clear();
  next_span_id_.store(0, std::memory_order_relaxed);
  next_thread_index_.store(0, std::memory_order_relaxed);
  thread_epoch_.fetch_add(1, std::memory_order_relaxed);
}

Counter& Registry::counter(std::string_view name) {
  const rs::util::MutexLock lock(mutex_);
  auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  counter_storage_.push_back(
      std::unique_ptr<Counter>(new Counter(std::string(name), this)));
  Counter* c = counter_storage_.back().get();
  counters_.emplace(c->name(), c);
  return *c;
}

void Registry::set_gauge(std::string_view name, std::uint64_t value) {
  if (!enabled()) return;
  const rs::util::MutexLock lock(mutex_);
  auto it = gauges_.find(name);
  if (it != gauges_.end()) {
    it->second = value;
  } else {
    gauges_.emplace(std::string(name), value);
  }
}

void Registry::record_span(SpanRecord record) {
  const rs::util::MutexLock lock(mutex_);
  spans_.push_back(std::move(record));
}

std::uint32_t Registry::thread_index() {
  // memory-order: relaxed — epoch and index only need uniqueness within a
  // reset() generation, and reset() happens at quiescent points.
  const std::uint64_t epoch = thread_epoch_.load(std::memory_order_relaxed);
  if (tls_thread_slot.epoch != epoch) {
    tls_thread_slot.epoch = epoch;
    tls_thread_slot.index =
        next_thread_index_.fetch_add(1, std::memory_order_relaxed);
  }
  return tls_thread_slot.index;
}

std::vector<SpanRecord> Registry::spans() const {
  const rs::util::MutexLock lock(mutex_);
  return spans_;
}

std::uint64_t Registry::counter_value(std::string_view name) const {
  const rs::util::MutexLock lock(mutex_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

std::map<std::string, std::uint64_t> Registry::counters() const {
  const rs::util::MutexLock lock(mutex_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, c] : counters_) out.emplace(name, c->value());
  return out;
}

std::map<std::string, std::uint64_t> Registry::gauges() const {
  const rs::util::MutexLock lock(mutex_);
  return {gauges_.begin(), gauges_.end()};
}

std::map<std::string, StageStats> Registry::stage_stats() const {
  std::map<std::string, StageStats> out;
  for (const auto& s : spans()) {
    auto [it, inserted] = out.try_emplace(s.name);
    StageStats& stats = it->second;
    if (inserted) {
      stats.min_ns = s.duration_ns;
      stats.max_ns = s.duration_ns;
    } else {
      stats.min_ns = std::min(stats.min_ns, s.duration_ns);
      stats.max_ns = std::max(stats.max_ns, s.duration_ns);
    }
    ++stats.count;
    stats.total_ns += s.duration_ns;
    stats.items += s.items;
  }
  return out;
}

std::string Registry::to_json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters()) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges()) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"stages\": {";
  first = true;
  for (const auto& [name, stats] : stage_stats()) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": {\"count\": " + std::to_string(stats.count) +
           ", \"total_ns\": " + std::to_string(stats.total_ns) +
           ", \"min_ns\": " + std::to_string(stats.min_ns) +
           ", \"max_ns\": " + std::to_string(stats.max_ns) +
           ", \"items\": " + std::to_string(stats.items) + "}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string Registry::to_chrome_trace() const {
  // "X" (complete) events carry start + duration in one record; parent
  // nesting is reconstructed by the viewer from time containment per tid.
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const auto& s : spans()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "{\"name\":";
    append_json_string(out, s.name);
    out += ",\"cat\":\"rootstore\",\"ph\":\"X\",\"ts\":";
    append_micros(out, s.start_ns);
    out += ",\"dur\":";
    append_micros(out, s.duration_ns);
    out += ",\"pid\":1,\"tid\":" + std::to_string(s.thread);
    out += ",\"args\":{\"id\":" + std::to_string(s.id) +
           ",\"parent\":" + std::to_string(s.parent) +
           ",\"items\":" + std::to_string(s.items) + "}}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

}  // namespace rs::obs
