// rs_obs: the pipeline's observability registry.
//
// One Registry instance aggregates everything the instrumented pipeline
// emits: hierarchical trace spans (see span.h), monotonic counters, and
// gauges.  It serializes to two formats — a metrics JSON document (counters,
// gauges, and per-stage aggregates keyed by span name) and the Chrome
// trace_event format loadable in chrome://tracing / Perfetto.
//
// Cost model (the contract the bench gate in BENCH_obs.json pins):
//   * DISABLED (the default): Span construction and Counter::add are a
//     single relaxed atomic load each — no clock query, no allocation, no
//     lock.  tests/obs/obs_disabled_test.cpp enforces this.
//   * ENABLED: Counter::add is one relaxed atomic add; finishing a span
//     takes the registry mutex once to append its record.  Hot loops are
//     instrumented at stage granularity only, never per element.
//
// Determinism: report output never flows through this layer, so enabling
// or disabling instrumentation cannot change a single report byte (pinned
// by tests/analysis/golden_report_test.cpp).  With a FakeClock installed,
// the serialized span tree itself is byte-reproducible.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/clock.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace rs::obs {

class Registry;

/// A monotonic counter.  Handles are stable for the process lifetime:
/// Registry::counter() never invalidates previously returned references,
/// and Registry::reset() zeroes values without destroying counters, so
/// instrumentation sites may cache `static Counter&` references.
class Counter {
 public:
  /// No-op (one relaxed load) while the owning registry is disabled.
  void add(std::uint64_t delta) noexcept;
  void increment() noexcept { add(1); }

  std::uint64_t value() const noexcept {
    // memory-order: relaxed — monotonic statistic; readers only need an
    // eventually-consistent snapshot, never ordering against other state.
    return value_.load(std::memory_order_relaxed);
  }
  const std::string& name() const noexcept { return name_; }

 private:
  friend class Registry;
  Counter(std::string name, const Registry* owner)
      : name_(std::move(name)), owner_(owner) {}

  std::string name_;
  const Registry* owner_;
  std::atomic<std::uint64_t> value_{0};
};

/// One finished span, as recorded by the RAII Span (span.h).
struct SpanRecord {
  std::string name;
  std::uint64_t id = 0;      // 1-based; 0 is reserved for "no parent"
  std::uint64_t parent = 0;  // id of the enclosing span on the same thread
  std::uint32_t thread = 0;  // dense per-registry thread index
  TimeNs start_ns = 0;
  TimeNs duration_ns = 0;
  std::uint64_t items = 0;   // optional workload size (certs, pairs, iters)
};

/// Aggregate view of all spans sharing a name: the per-stage metrics.
struct StageStats {
  std::uint64_t count = 0;
  TimeNs total_ns = 0;
  TimeNs min_ns = 0;
  TimeNs max_ns = 0;
  std::uint64_t items = 0;
};

/// Thread-safe sink for spans, counters, and gauges.
///
/// Most code uses the process-wide Registry::global(); tests construct
/// private instances.  Enabling installs a clock (default: a static
/// SteadyClock) and starts recording; disabling stops recording but keeps
/// whatever was already collected until reset().
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry.  First access honours the ROOTSTORE_TRACE
  /// environment variable: when set (non-empty), instrumentation starts
  /// enabled, so any binary in the tree can be traced without code changes.
  static Registry& global();

  /// Starts recording.  `clock` must outlive the registry; nullptr selects
  /// the built-in SteadyClock.
  void enable(const Clock* clock = nullptr);
  // memory-order: relaxed — the enabled flag is an independent on/off
  // probe; the clock pointer it gates is published separately with
  // release/acquire (see clock_), so no ordering is needed here.
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const noexcept {
    // memory-order: relaxed — see disable(); a stale read only means one
    // more or one fewer sample around an enable/disable edge.
    return enabled_.load(std::memory_order_relaxed);
  }
  const Clock& clock() const noexcept {
    // memory-order: acquire — pairs with the release store in enable() so
    // a thread that observes the pointer also observes the constructed
    // clock object behind it.
    return *clock_.load(std::memory_order_acquire);
  }

  /// Zeroes every counter, clears gauges and spans, and resets the span-id
  /// and thread-index generators.  Counter handles stay valid.
  void reset();

  /// Interns a counter by name (creating it on first use) and returns a
  /// process-lifetime-stable reference.
  Counter& counter(std::string_view name);

  /// Sets a gauge (last-write-wins instantaneous value).
  void set_gauge(std::string_view name, std::uint64_t value);

  /// Appends a finished span.  Called by Span's destructor; also usable
  /// directly for externally timed phases.
  void record_span(SpanRecord record);

  // --- introspection ------------------------------------------------------
  std::vector<SpanRecord> spans() const;
  std::uint64_t counter_value(std::string_view name) const;
  std::map<std::string, std::uint64_t> counters() const;
  std::map<std::string, std::uint64_t> gauges() const;
  /// Spans aggregated by name, sorted by name (the per-stage metrics).
  std::map<std::string, StageStats> stage_stats() const;

  // --- serialization ------------------------------------------------------
  /// Metrics document: {"counters":{...},"gauges":{...},"stages":{...}}.
  /// Keys are sorted; with a FakeClock the output is byte-reproducible.
  std::string to_json() const;
  /// Chrome trace_event JSON ("X" complete events, microsecond timestamps)
  /// loadable in chrome://tracing and Perfetto.
  std::string to_chrome_trace() const;

  // --- used by Span -------------------------------------------------------
  std::uint64_t next_span_id() noexcept {
    // memory-order: relaxed — ids only need uniqueness, not ordering.
    return next_span_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  /// Dense index for the calling thread, assigned on first use per epoch
  /// (reset() starts a new epoch so tests see indices from 0 again).
  std::uint32_t thread_index();

 private:
  std::atomic<bool> enabled_{false};
  // Set by enable(), read lock-free by every probe; atomic because spans on
  // worker threads may race an enable()/clock swap on the main thread.
  std::atomic<const Clock*> clock_{nullptr};

  mutable rs::util::Mutex mutex_;
  // Deque-like stable storage: counters are never destroyed or moved once
  // created, so references handed out remain valid without the lock.
  std::vector<std::unique_ptr<Counter>> counter_storage_
      RS_GUARDED_BY(mutex_);
  std::map<std::string, Counter*, std::less<>> counters_
      RS_GUARDED_BY(mutex_);
  std::map<std::string, std::uint64_t, std::less<>> gauges_
      RS_GUARDED_BY(mutex_);
  std::vector<SpanRecord> spans_ RS_GUARDED_BY(mutex_);

  std::atomic<std::uint64_t> next_span_id_{0};
  std::atomic<std::uint32_t> next_thread_index_{0};
  std::atomic<std::uint64_t> thread_epoch_{0};
};

}  // namespace rs::obs
