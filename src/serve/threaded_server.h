// ThreadedServer: the PR 5 thread-per-connection serve layer, preserved
// verbatim as the measured baseline for the epoll rebuild.
//
// Architecture (the one BENCH_serve.json's `threaded_*` phases record):
//   * One accept thread owns the listening socket.
//   * Each accepted connection becomes one task on an exec::ThreadPool of
//     `num_threads` workers, so at most `num_threads` connections are
//     served concurrently; further connections queue at the pool.  With
//     zero workers the accept thread serves connections inline.
//   * A single globally mutexed LruCache fronts the engine.
//
// `rootstore serve --transport threaded` runs it; the default transport is
// the event-driven serve::Server (server.h), which this class exists to be
// compared against — same protocol, same engine, no batch/hot-swap
// support.  Do not grow features here: it is a frozen baseline.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <thread>

#include "src/exec/thread_pool.h"
#include "src/query/engine.h"
#include "src/serve/lru_cache.h"
#include "src/serve/server.h"
#include "src/util/mutex.h"
#include "src/util/result.h"
#include "src/util/thread_annotations.h"

namespace rs::serve {

class ThreadedServer {
 public:
  /// `engine` must outlive the server.  Only `port`, `num_threads`,
  /// `cache_capacity`, and `backlog` of the options apply.
  ThreadedServer(const rs::query::QueryEngine& engine, ServerOptions options);
  ~ThreadedServer();

  ThreadedServer(const ThreadedServer&) = delete;
  ThreadedServer& operator=(const ThreadedServer&) = delete;

  rs::util::Result<std::uint16_t> start();
  std::uint16_t port() const noexcept { return port_; }
  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  void stop();
  ServerStats stats() const;
  std::string respond_line(std::string_view line);

 private:
  void accept_loop();
  void serve_connection(int fd);
  std::string server_stats_response() const;
  void register_connection(int fd) RS_EXCLUDES(mutex_);
  void unregister_connection(int fd) RS_EXCLUDES(mutex_);

  const rs::query::QueryEngine& engine_;
  const ServerOptions options_;
  LruCache cache_;
  std::unique_ptr<rs::exec::ThreadPool> pool_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};

  mutable rs::util::Mutex mutex_;
  rs::util::CondVar idle_cv_;  // signalled when active_ empties
  // fds of registered connections
  std::set<int> active_ RS_GUARDED_BY(mutex_);

  // memory-order: relaxed — independent monotonic counters, read only by
  // stats() snapshots that tolerate momentary skew between them.
  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> errors_{0};
};

}  // namespace rs::serve
