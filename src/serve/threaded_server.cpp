#include "src/serve/threaded_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "src/obs/span.h"
#include "src/query/request.h"
#include "src/util/strings.h"

namespace rs::serve {
namespace {

/// Writes the whole buffer, retrying short writes.  MSG_NOSIGNAL keeps a
/// dead client from raising SIGPIPE; false means the connection is gone.
bool send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

ThreadedServer::ThreadedServer(const rs::query::QueryEngine& engine,
                               ServerOptions options)
    : engine_(engine),
      options_(options),
      cache_(options.cache_capacity),
      pool_(std::make_unique<rs::exec::ThreadPool>(options.num_threads)) {}

ThreadedServer::~ThreadedServer() { stop(); }

rs::util::Result<std::uint16_t> ThreadedServer::start() {
  using R = rs::util::Result<std::uint16_t>;
  if (running()) return R::err("server already running");

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return R::err("socket: " + rs::util::errno_message(errno));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string why = rs::util::errno_message(errno);
    ::close(fd);
    return R::err("bind 127.0.0.1:" + std::to_string(options_.port) + ": " +
                  why);
  }
  if (::listen(fd, options_.backlog) != 0) {
    const std::string why = rs::util::errno_message(errno);
    ::close(fd);
    return R::err("listen: " + why);
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const std::string why = rs::util::errno_message(errno);
    ::close(fd);
    return R::err("getsockname: " + why);
  }
  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
  draining_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return port_;
}

void ThreadedServer::accept_loop() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // stop() shut the listening socket down; anything else is fatal for
      // the accept loop either way.
      return;
    }
    if (draining_.load(std::memory_order_acquire)) {
      ::close(fd);
      continue;
    }
    // memory-order: relaxed — monotonic counter read only by stats().
    connections_.fetch_add(1, std::memory_order_relaxed);
    rs::obs::Registry::global().counter("serve.connections").increment();
    register_connection(fd);
    // Queue-wait probe: measured only while tracing, so the disabled path
    // stays clock-free.
    auto& registry = rs::obs::Registry::global();
    const bool timed = registry.enabled();
    const std::uint64_t enqueued_ns = timed ? registry.clock().now_ns() : 0;
    pool_->submit([this, fd, timed, enqueued_ns] {
      if (timed) {
        auto& reg = rs::obs::Registry::global();
        if (reg.enabled()) {
          reg.counter("serve.queue_wait_ns")
              .add(static_cast<std::uint64_t>(reg.clock().now_ns() -
                                              enqueued_ns));
        }
      }
      serve_connection(fd);
      ::shutdown(fd, SHUT_RDWR);
      // Unregister before close: once closed, the kernel may recycle the
      // fd number for a new accept, and the unregister would then evict
      // the new connection's registration.
      unregister_connection(fd);
      ::close(fd);
    });
  }
}

void ThreadedServer::serve_connection(int fd) {
  rs::obs::Span span("serve/connection");
  // Read caps: the widest legal request line — a full batch envelope
  // (verify items included; same bound the epoll transport enforces) —
  // plus its newline (and optional '\r').
  constexpr std::size_t kMaxLine = rs::query::kMaxBatchBytes + 2;
  std::string buffer;
  char chunk[4096];
  bool oversized = false;
  std::uint64_t served = 0;

  while (!oversized) {
    // Drain complete lines already buffered (clients may pipeline).
    std::size_t start = 0;
    while (true) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      std::string_view line(buffer.data() + start, nl - start);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      std::string response = respond_line(line);
      response.push_back('\n');
      if (!send_all(fd, response)) {
        span.set_items(served);
        return;
      }
      ++served;
      start = nl + 1;
    }
    buffer.erase(0, start);
    if (draining_.load(std::memory_order_acquire)) {
      // Drain semantics: every fully received request (all complete lines
      // in the buffer) is answered, then the connection closes even if
      // more bytes are in flight.
      span.set_items(served);
      return;
    }
    if (buffer.size() > kMaxLine) break;  // unterminated oversized line

    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      span.set_items(served);
      return;
    }
    if (n == 0) {
      // EOF.  Leftover bytes without a newline are an incomplete request;
      // answer it as malformed rather than dropping it silently.
      if (!buffer.empty()) {
        // memory-order: relaxed — monotonic counter read only by stats().
        errors_.fetch_add(1, std::memory_order_relaxed);
        rs::obs::Registry::global().counter("serve.errors").increment();
        std::string response = rs::query::error_response(
            "bad_request", "connection closed mid-request (no newline)");
        response.push_back('\n');
        send_all(fd, response);
      }
      span.set_items(served);
      return;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    if (buffer.size() > kMaxLine && buffer.find('\n') == std::string::npos) {
      oversized = true;
    }
  }

  // Oversized request: structured error, then close — line framing can't
  // be trusted past this point.
  // memory-order: relaxed — monotonic counter read only by stats().
  errors_.fetch_add(1, std::memory_order_relaxed);
  rs::obs::Registry::global().counter("serve.errors").increment();
  std::string response = rs::query::error_response(
      "oversized",
      "request line exceeds " + std::to_string(rs::query::kMaxBatchBytes) +
          " bytes; closing connection");
  response.push_back('\n');
  send_all(fd, response);
  span.set_items(served);
}

std::string ThreadedServer::respond_line(std::string_view line) {
  rs::obs::Span span("serve/request");
  auto& registry = rs::obs::Registry::global();
  // memory-order: relaxed — monotonic counters read only by stats().
  requests_.fetch_add(1, std::memory_order_relaxed);
  registry.counter("serve.requests").increment();

  auto parsed = rs::query::parse_request(line);
  if (!parsed.ok()) {
    // memory-order: relaxed — monotonic counter read only by stats().
    errors_.fetch_add(1, std::memory_order_relaxed);
    registry.counter("serve.errors").increment();
    return rs::query::error_response("bad_request", parsed.error());
  }
  if (parsed.value().op == rs::query::Op::kServerStats) {
    return server_stats_response();
  }

  const std::string key = rs::query::canonical_request(parsed.value());
  if (auto cached = cache_.get(key)) {
    registry.counter("serve.cache_hits").increment();
    return *std::move(cached);
  }
  registry.counter("serve.cache_misses").increment();

  std::string response = engine_.handle(parsed.value());
  if (rs::query::QueryEngine::is_error_response(response)) {
    // memory-order: relaxed — monotonic counter read only by stats().
    errors_.fetch_add(1, std::memory_order_relaxed);
    registry.counter("serve.errors").increment();
  } else {
    cache_.put(key, response);
  }
  return response;
}

std::string ThreadedServer::server_stats_response() const {
  const ServerStats s = stats();
  std::string out = "{\"op\":\"server_stats\",\"status\":\"ok\"";
  const auto field = [&out](const char* key, std::uint64_t value) {
    out.push_back(',');
    out.push_back('"');
    out += key;
    out += "\":";
    out += std::to_string(value);
  };
  field("connections", s.connections);
  field("requests", s.requests);
  field("errors", s.errors);
  field("cache_hits", s.cache_hits);
  field("cache_misses", s.cache_misses);
  field("cache_entries", cache_.size());
  field("cache_capacity", cache_.capacity());
  field("threads", pool_->worker_count());
  out.push_back('}');
  return out;
}

void ThreadedServer::register_connection(int fd) {
  const rs::util::MutexLock lock(mutex_);
  active_.insert(fd);
}

void ThreadedServer::unregister_connection(int fd) {
  const rs::util::MutexLock lock(mutex_);
  active_.erase(fd);
  if (active_.empty()) idle_cv_.notify_all();
}

void ThreadedServer::stop() {
  bool expected = true;
  if (!running_.compare_exchange_strong(expected, false)) return;
  draining_.store(true, std::memory_order_release);

  // Wake the accept thread (Linux: shutdown on a listening socket makes a
  // blocked accept return).
  ::shutdown(listen_fd_, SHUT_RDWR);

  // Half-close every active connection's read side: blocked reads see EOF,
  // requests already received keep flowing to their responses.  This must
  // precede the join — with zero pool workers the accept thread serves
  // connections inline, and an idle client would otherwise hold it (and
  // this join) hostage.
  {
    const rs::util::MutexLock lock(mutex_);
    for (const int fd : active_) ::shutdown(fd, SHUT_RD);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;

  // Second sweep: connections accepted between the first sweep and the
  // join registered before the accept loop exited, so this catches them
  // all — nothing registers after the join.
  {
    const rs::util::MutexLock lock(mutex_);
    for (const int fd : active_) ::shutdown(fd, SHUT_RD);
  }
  const rs::util::MutexLock lock(mutex_);
  while (!active_.empty()) idle_cv_.wait(mutex_);
}

ServerStats ThreadedServer::stats() const {
  ServerStats s;
  // memory-order: relaxed — point-in-time snapshot; fields may be mutually
  // skewed by in-flight requests, which callers of stats() accept.
  s.connections = connections_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  const LruCache::Counters c = cache_.counters();
  s.cache_hits = c.hits;
  s.cache_misses = c.misses;
  return s;
}

}  // namespace rs::serve
