#include "src/serve/event_loop.h"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

namespace rs::serve {
namespace {

constexpr int kMaxEvents = 64;

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

EventLoop::EventLoop(EventLoopOptions options, EventLoopHooks hooks)
    : options_(options), hooks_(std::move(hooks)) {}

EventLoop::~EventLoop() {
  request_drain();
  join();
  for (auto& [fd, conn] : conns_) ::close(fd);
  conns_.clear();
  {
    const rs::util::MutexLock lock(mutex_);
    for (const int fd : inbox_) ::close(fd);
    inbox_.clear();
  }
  if (wake_fds_[0] >= 0) ::close(wake_fds_[0]);
  if (wake_fds_[1] >= 0) ::close(wake_fds_[1]);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::set_peers(std::vector<EventLoop*> peers) {
  peers_ = std::move(peers);
}

void EventLoop::set_listen_fd(int fd) { listen_fd_ = fd; }

bool EventLoop::start() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return false;
  if (::pipe(wake_fds_) != 0) return false;
  if (!set_nonblocking(wake_fds_[0]) || !set_nonblocking(wake_fds_[1])) {
    return false;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;  // level-triggered: a pending wake byte re-notifies
  ev.data.fd = wake_fds_[0];
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fds_[0], &ev) != 0) {
    return false;
  }
  if (listen_fd_ >= 0) {
    epoll_event lev{};
    lev.events = EPOLLIN;  // level-triggered: backlog re-notifies until empty
    lev.data.fd = listen_fd_;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &lev) != 0) {
      return false;
    }
  }
  thread_ = std::thread([this] { run(); });
  return true;
}

void EventLoop::adopt(int fd) {
  {
    const rs::util::MutexLock lock(mutex_);
    inbox_.push_back(fd);
  }
  wake();
}

void EventLoop::request_drain() {
  {
    const rs::util::MutexLock lock(mutex_);
    drain_requested_ = true;
  }
  wake();
}

void EventLoop::join() {
  if (thread_.joinable()) thread_.join();
}

void EventLoop::wake() {
  const char byte = 1;
  while (wake_fds_[1] >= 0) {
    const ssize_t n = ::write(wake_fds_[1], &byte, 1);
    if (n >= 0) break;                // delivered
    if (errno == EINTR) continue;
    break;                            // EAGAIN: a wake is already pending
  }
}

void EventLoop::run() {
  epoll_event events[kMaxEvents];
  while (true) {
    int timeout_ms = -1;
    if (draining_) {
      const auto remaining = std::chrono::duration_cast<
          std::chrono::milliseconds>(drain_deadline_at_ -
                                     std::chrono::steady_clock::now());
      timeout_ms = remaining.count() > 0
                       ? static_cast<int>(remaining.count())
                       : 0;
    }
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // epoll fd gone: nothing recoverable
    }
    accept_ready_ = false;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fds_[0]) {
        char buf[64];
        while (::read(wake_fds_[0], buf, sizeof buf) > 0) {
        }
      } else if (fd == listen_fd_) {
        accept_ready_ = true;
      } else {
        handle_event(fd, events[i].events);
      }
    }

    // Inbox: adopted fds and the drain request (checked every iteration so
    // a wake delivered between epoll_wait calls is never lost).
    std::vector<int> adopted;
    bool drain_now = false;
    {
      const rs::util::MutexLock lock(mutex_);
      adopted.swap(inbox_);
      drain_now = drain_requested_;
    }
    for (const int fd : adopted) adopt_local(fd);
    if (drain_now && !draining_) begin_drain();

    if (accept_ready_ && !draining_) do_accept();

    if (draining_) {
      if (std::chrono::steady_clock::now() >= drain_deadline_at_) {
        // Peers that stopped reading their responses forfeit them.
        std::vector<int> fds;
        fds.reserve(conns_.size());
        for (const auto& [fd, conn] : conns_) fds.push_back(fd);
        for (const int fd : fds) close_conn(fd);
      }
      if (conns_.empty()) return;
    }
  }
}

void EventLoop::do_accept() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: backlog empty; anything else: retry on next event
    }
    if (hooks_.on_connection) hooks_.on_connection();
    EventLoop* target =
        peers_.empty() ? this : peers_[next_peer_++ % peers_.size()];
    if (target == this) {
      adopt_local(fd);
    } else {
      target->adopt(fd);
    }
  }
}

void EventLoop::adopt_local(int fd) {
  if (draining_) {
    // Handed off after this loop began draining: answer nothing, close.
    ::close(fd);
    return;
  }
  auto conn = std::make_unique<Conn>();
  conn->fd = fd;
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLRDHUP | EPOLLET;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    ::close(fd);
    return;
  }
  // A freshly accepted socket may already hold bytes; with EPOLLET the ADD
  // above delivers that edge, so no manual pump is needed here.
  conns_.emplace(fd, std::move(conn));
}

void EventLoop::handle_event(int fd, std::uint32_t events) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;  // already closed this iteration
  Conn& conn = *it->second;
  if ((events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) != 0) {
    conn.read_ready = true;
  }
  if ((events & EPOLLOUT) != 0) flush(conn);
  pump(conn);
}

void EventLoop::pump(Conn& conn) {
  while (!conn.close_after_flush) {
    process_lines(conn);
    if (conn.close_after_flush) break;
    if (pending_out(conn) > options_.write_buffer_cap) {
      // Backpressure: before pausing, try to drain to the kernel.  Pause
      // only when the socket itself is full — then EPOLLOUT is armed and
      // guarantees this connection is pumped again; pausing after a clean
      // flush would strand buffered input with no future event.
      flush(conn);
      if (pending_out(conn) > options_.write_buffer_cap) break;
      continue;
    }
    if (draining_ || !conn.read_ready) break;
    char buf[16384];
    const ssize_t n = ::recv(conn.fd, buf, sizeof buf, 0);
    if (n > 0) {
      conn.in.append(buf, static_cast<std::size_t>(n));
      if (conn.in.size() > options_.max_line_bytes &&
          conn.in.find('\n') == std::string::npos) {
        // Unterminated flood: structured error, then close — line framing
        // cannot be trusted past this point.
        conn.out.append(hooks_.transport_error(
            "oversized", "request line exceeds " +
                             std::to_string(options_.max_line_bytes) +
                             " bytes; closing connection"));
        conn.out.push_back('\n');
        conn.in.clear();
        conn.close_after_flush = true;
        break;
      }
      continue;
    }
    if (n == 0) {
      conn.peer_eof = true;
      conn.read_ready = false;
      process_lines(conn);
      if (!conn.in.empty()) {
        // EOF mid-line: answer the incomplete request as malformed rather
        // than dropping it silently.
        conn.out.append(hooks_.transport_error(
            "bad_request", "connection closed mid-request (no newline)"));
        conn.out.push_back('\n');
        conn.in.clear();
      }
      conn.close_after_flush = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      conn.read_ready = false;
      break;
    }
    // Hard receive error: the connection is gone; forfeit pending output.
    conn.out.clear();
    conn.out_offset = 0;
    conn.close_after_flush = true;
    break;
  }
  flush(conn);
  finish_or_rearm(conn);
}

void EventLoop::process_lines(Conn& conn) {
  std::size_t start = 0;
  while (true) {
    // Backpressure check per line (not per buffer) so a pipelined burst
    // pauses exactly when the cap is crossed.  Drain ignores the cap: every
    // fully received request is answered before the connection closes.
    if (!draining_ && pending_out(conn) > options_.write_buffer_cap) break;
    const std::size_t nl = conn.in.find('\n', start);
    if (nl == std::string::npos) break;
    std::string_view line(conn.in.data() + start, nl - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    conn.out.append(hooks_.respond(line));
    conn.out.push_back('\n');
    start = nl + 1;
  }
  if (start > 0) conn.in.erase(0, start);
}

void EventLoop::flush(Conn& conn) {
  while (pending_out(conn) > 0) {
    const ssize_t n =
        ::send(conn.fd, conn.out.data() + conn.out_offset, pending_out(conn),
               MSG_NOSIGNAL);
    if (n >= 0) {
      conn.out_offset += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!conn.want_write) {
        conn.want_write = true;
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET;
        ev.data.fd = conn.fd;
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
      }
      return;
    }
    // Peer vanished: nothing left to deliver.
    conn.out.clear();
    conn.out_offset = 0;
    conn.close_after_flush = true;
    return;
  }
  conn.out.clear();
  conn.out_offset = 0;
  if (conn.want_write) {
    conn.want_write = false;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP | EPOLLET;
    ev.data.fd = conn.fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
  }
}

void EventLoop::finish_or_rearm(Conn& conn) {
  if (conn.close_after_flush && pending_out(conn) == 0) {
    close_conn(conn.fd);
  }
}

void EventLoop::close_conn(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  conns_.erase(fd);
}

void EventLoop::begin_drain() {
  draining_ = true;
  drain_deadline_at_ = std::chrono::steady_clock::now() +
                       options_.drain_deadline;
  if (listen_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
  }
  // Answer what is already buffered, then close.  Collect fds first:
  // pump() may erase from conns_ mid-iteration.
  std::vector<int> fds;
  fds.reserve(conns_.size());
  for (const auto& [fd, conn] : conns_) fds.push_back(fd);
  for (const int fd : fds) {
    const auto it = conns_.find(fd);
    if (it == conns_.end()) continue;
    Conn& conn = *it->second;
    process_lines(conn);
    conn.close_after_flush = true;
    flush(conn);
    finish_or_rearm(conn);
  }
}

}  // namespace rs::serve
