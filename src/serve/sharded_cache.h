// A sharded response cache: kShards independent LruCaches, shard chosen
// by a hash of the canonical request key.
//
// The PR 5 serve layer fronted the engine with ONE mutexed LRU, so every
// cache hit — the fast path — serialized on the same lock.  Sharding
// splits the key space across next_pow2(threads) locks: two event-loop
// workers answering different requests touch different shards and never
// contend.  Each shard is the existing annotated serve::LruCache, so the
// lock discipline (-Wthread-safety over RS_GUARDED_BY fields) is inherited
// rather than re-proven.
//
// Counter exactness: every get()/put() touches exactly one shard under
// that shard's mutex, so summing per-shard counters gives exact totals —
// hits + misses always equals the number of get() calls ever made
// (tests/serve/sharded_cache_test.cpp holds that line under concurrent
// mixed traffic).
//
// Hashing is FNV-1a, fixed here rather than std::hash so shard routing is
// deterministic across standard libraries; the shard count is a power of
// two so selection is a mask, not a division.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/serve/lru_cache.h"

namespace rs::serve {

/// Smallest power of two >= n (n = 0 or 1 both give 1).
constexpr std::size_t next_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

class ShardedCache {
 public:
  /// `capacity` is the TOTAL entry budget, split evenly across
  /// next_pow2(shard_hint) shards (rounded up, so the usable total is
  /// never below the requested one).  capacity 0 disables caching.
  ShardedCache(std::size_t capacity, std::size_t shard_hint);

  ShardedCache(const ShardedCache&) = delete;
  ShardedCache& operator=(const ShardedCache&) = delete;

  [[nodiscard]] std::optional<std::string> get(const std::string& key);
  void put(const std::string& key, std::string value);

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] LruCache::Counters counters() const;

  /// The shard `key` routes to — exposed so tests can pin the routing.
  [[nodiscard]] std::size_t shard_of(std::string_view key) const noexcept;

 private:
  const std::size_t capacity_;
  // unique_ptr because LruCache is immovable (it owns a Mutex).
  std::vector<std::unique_ptr<LruCache>> shards_;
};

}  // namespace rs::serve
