// `rootstore serve`: the event-driven loopback TCP server over QueryEngine.
//
// Protocol (docs/SERVING.md): newline-delimited JSON.  Each client sends
// one request object per line and receives exactly one response line, in
// order, over a persistent connection.  Responses are byte-identical to
// QueryEngine::handle_json() on the same line — the engine is the single
// handler, the server only adds transport, caching, batching fan-out, and
// counters.  A `{"op":"batch","requests":[...]}` line is one transport
// line fanning out to up to query::kMaxBatchRequests engine calls whose
// responses come back in one envelope.
//
// Architecture (the PR 5 thread-per-connection design lives on unchanged
// in threaded_server.h as the measured baseline):
//   * A fixed pool of `num_threads` EventLoop workers, each owning its own
//     epoll fd.  Loop 0 additionally owns the nonblocking listening socket
//     (bound to 127.0.0.1 only) and round-robins accepted fds across all
//     loops via the handoff ring — one accept point, no thundering herd.
//   * Connections are nonblocking and edge-triggered with per-connection
//     read/write buffers; a connection whose pending responses exceed
//     `write_buffer_cap` stops being read until the peer drains it
//     (backpressure via TCP flow control).
//   * A ShardedCache (next_pow2(num_threads) shards) keyed on
//     epoch-prefixed canonical_request() fronts the engine, so loops
//     answering different requests never contend on one cache lock.
//
// Hot swap (RCU): the engine is published as
// `std::atomic<std::shared_ptr<const Published>>` where Published bundles
// {engine, epoch}.  A request pins one Published at dispatch and uses it
// for the whole line (every item of a batch included), so a swap mid-line
// never mixes epochs.  Old engines are freed when the last in-flight
// request drops its shared_ptr.  Cache keys carry the epoch, so entries
// cached under a replaced engine can never be served after a flip.
// Swaps come from the `reload_index` admin op or `--watch-index` polling;
// both run options_.reload_factory on the dedicated reloader thread —
// never on an event loop — so serving latency is unaffected by index
// loading.
//
// Graceful drain: stop() drains loop 0 first (no more accepts or
// handoffs), then the peers; every fully received request line is
// answered before its connection closes, bounded by `drain_deadline`.
// SIGINT handling lives in the CLI (tools/rootstore.cpp), which calls
// stop() from the main thread.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/query/engine.h"
#include "src/serve/event_loop.h"
#include "src/serve/sharded_cache.h"
#include "src/util/mutex.h"
#include "src/util/result.h"
#include "src/util/thread_annotations.h"

namespace rs::serve {

struct ServerOptions {
  std::uint16_t port = 0;          // 0 = kernel-assigned ephemeral port
  std::size_t num_threads = 4;     // event-loop workers (0 → 1)
  std::size_t cache_capacity = 1024;  // total LRU entries; 0 disables
  int backlog = 64;                // listen(2) backlog
  std::size_t write_buffer_cap = 262144;  // per-conn backpressure threshold
  std::chrono::milliseconds drain_deadline{5000};
  /// Loads a fresh engine for a hot swap; invoked on the reloader thread
  /// only.  Unset → `reload_index` answers `reload_unavailable`.
  std::function<rs::util::Result<std::shared_ptr<const rs::query::QueryEngine>>()>
      reload_factory;
  /// When nonempty, the reloader thread polls this file's mtime every
  /// `watch_interval` and runs `reload_factory` on change.
  std::string watch_path;
  std::chrono::milliseconds watch_interval{200};
};

/// Point-in-time serve-layer counters (also mirrored to rs_obs as
/// serve.requests / serve.errors / serve.cache_hits / serve.cache_misses /
/// serve.connections / serve.batch_items / serve.reloads when tracing is
/// enabled).
struct ServerStats {
  std::uint64_t connections = 0;   // accepted since start
  std::uint64_t requests = 0;      // request lines answered
  std::uint64_t errors = 0;        // error responses (parse or engine)
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t batch_items = 0;   // individual requests inside batch lines
  std::uint64_t epoch = 0;         // current engine epoch (0 = initial)
  std::uint64_t reloads = 0;       // successful hot swaps
  std::uint64_t reload_failures = 0;
};

class Server {
 public:
  /// The server shares ownership of `engine` (hot swaps retire it only
  /// after the last in-flight request finishes).
  Server(std::shared_ptr<const rs::query::QueryEngine> engine,
         ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the event-loop pool (plus the reloader
  /// thread when configured).  Returns the bound port (useful with port 0)
  /// or a diagnostic.
  rs::util::Result<std::uint16_t> start();

  /// The bound port; 0 before a successful start().
  std::uint16_t port() const noexcept { return port_; }

  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  /// Graceful drain, idempotent: stop accepting, answer every fully
  /// received request, flush, then return (bounded by drain_deadline).
  void stop();

  ServerStats stats() const;

  /// Answers one request line exactly as a connection would (cache,
  /// batch, server_stats, and reload_index included).  Exposed for the
  /// serve-layer tests; callable without start().
  std::string respond_line(std::string_view line);

  /// Publishes `engine` as a new epoch (RCU flip).  In-flight requests
  /// keep the epoch they pinned at dispatch; new requests see the new
  /// one.  Thread-safe against readers and other swappers.
  void swap_engine(std::shared_ptr<const rs::query::QueryEngine> engine);

  /// The currently published epoch (starts at 0, +1 per swap).
  std::uint64_t epoch() const;

 private:
  /// One atomically published engine+epoch pair.  Bundling them means a
  /// single load observes a consistent pair — no torn engine/epoch reads.
  struct Published {
    std::shared_ptr<const rs::query::QueryEngine> engine;
    std::uint64_t epoch = 0;
  };

  std::string respond_single(const Published& pub, std::string_view line);
  std::string server_stats_response() const;
  std::string reload_response(const Published& pub) RS_EXCLUDES(reload_mutex_);
  void reload_loop();
  void run_reload();

  const ServerOptions options_;
  ShardedCache cache_;
  std::atomic<std::shared_ptr<const Published>> published_;

  // unique_ptr: EventLoop is immovable (owns a Mutex and a thread).
  std::vector<std::unique_ptr<EventLoop>> loops_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};

  std::thread reload_thread_;
  mutable rs::util::Mutex reload_mutex_;
  rs::util::CondVar reload_cv_;
  std::uint64_t reload_pending_ RS_GUARDED_BY(reload_mutex_) = 0;
  bool reload_stop_ RS_GUARDED_BY(reload_mutex_) = false;
  // Reloader-thread-only (plus start(), before the thread exists): last
  // observed nanosecond mtime of watch_path, -1 when never stat'ed.
  std::int64_t watch_mtime_ = -1;

  // memory-order: relaxed — independent monotonic counters, read only by
  // stats() snapshots that tolerate momentary skew between them.
  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> batch_items_{0};
  std::atomic<std::uint64_t> reloads_{0};
  std::atomic<std::uint64_t> reload_failures_{0};
};

}  // namespace rs::serve
