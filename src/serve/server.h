// `rootstore serve`: a concurrent loopback TCP server over the QueryEngine.
//
// Protocol (docs/SERVING.md): newline-delimited JSON.  Each client sends
// one request object per line and receives exactly one response line, in
// order, over a persistent connection.  Responses are byte-identical to
// QueryEngine::handle_json() on the same line — the engine is the single
// handler, the server only adds transport, caching, and counters.
//
// Architecture:
//   * One accept thread owns the listening socket (bound to 127.0.0.1
//     only; this is an analysis-dataset service, not an Internet daemon).
//   * Each accepted connection becomes one task on an exec::ThreadPool of
//     `num_threads` workers, so at most `num_threads` connections are
//     served concurrently; further connections queue at the pool.  With
//     zero workers the accept thread serves connections inline, one at a
//     time (the degenerate single-threaded mode).
//   * An LruCache keyed on canonical_request() fronts the engine.
//
// Robustness: request lines are capped at query::kMaxRequestBytes; an
// oversized or malformed line gets a structured error response (the
// connection closes after an oversized one, since framing is lost).  A
// crashed client mid-line just closes the connection.
//
// Graceful drain: stop() stops accepting, half-closes every active
// connection's read side, and waits until each in-flight request has been
// answered and its connection torn down.  SIGINT handling lives in the
// CLI (tools/rootstore.cpp), which calls stop() from the main thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <thread>

#include "src/exec/thread_pool.h"
#include "src/query/engine.h"
#include "src/serve/lru_cache.h"
#include "src/util/mutex.h"
#include "src/util/result.h"
#include "src/util/thread_annotations.h"

namespace rs::serve {

struct ServerOptions {
  std::uint16_t port = 0;          // 0 = kernel-assigned ephemeral port
  std::size_t num_threads = 4;     // pool workers (0 = inline serial)
  std::size_t cache_capacity = 1024;  // LRU entries; 0 disables the cache
  int backlog = 64;                // listen(2) backlog
};

/// Point-in-time serve-layer counters (also mirrored to rs_obs as
/// serve.requests / serve.errors / serve.cache_hits / serve.cache_misses /
/// serve.connections / serve.queue_wait_ns when tracing is enabled).
struct ServerStats {
  std::uint64_t connections = 0;   // accepted since start
  std::uint64_t requests = 0;      // request lines answered
  std::uint64_t errors = 0;        // error responses (parse or engine)
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

class Server {
 public:
  /// `engine` must outlive the server.
  Server(const rs::query::QueryEngine& engine, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the accept thread.  Returns the bound
  /// port (useful with port 0) or a diagnostic.
  rs::util::Result<std::uint16_t> start();

  /// The bound port; 0 before a successful start().
  std::uint16_t port() const noexcept { return port_; }

  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  /// Graceful drain, idempotent: stop accepting, let every in-flight
  /// request finish and its response flush, then return.
  void stop();

  ServerStats stats() const;

  /// Answers one request line exactly as a connection would (cache +
  /// server_stats included).  Exposed for the serve-layer tests.
  std::string respond_line(std::string_view line);

 private:
  void accept_loop();
  void serve_connection(int fd);
  std::string server_stats_response() const;
  void register_connection(int fd) RS_EXCLUDES(mutex_);
  void unregister_connection(int fd) RS_EXCLUDES(mutex_);

  const rs::query::QueryEngine& engine_;
  const ServerOptions options_;
  LruCache cache_;
  std::unique_ptr<rs::exec::ThreadPool> pool_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};

  mutable rs::util::Mutex mutex_;
  rs::util::CondVar idle_cv_;  // signalled when active_ empties
  // fds of registered connections
  std::set<int> active_ RS_GUARDED_BY(mutex_);

  // memory-order: relaxed — independent monotonic counters, read only by
  // stats() snapshots that tolerate momentary skew between them.
  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> errors_{0};
};

}  // namespace rs::serve
