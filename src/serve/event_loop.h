// One epoll-driven serve worker: the readiness loop behind `rootstore serve`.
//
// Each EventLoop owns its own epoll fd, a self-pipe for cross-thread
// wakeups, and the connections that were handed to it — there is no shared
// connection table and no per-connection thread.  Sockets are nonblocking
// and edge-triggered (EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET): reads
// drain until EAGAIN, writes flush until EAGAIN, and EPOLLOUT interest is
// registered only while a write buffer is nonempty.  The idiom follows the
// Chromium net stack's socket pumps (see
// /root/related/klzgrad__naiveproxy/src/net/socket/).
//
// Accepting: exactly one loop (index 0 by convention) registers the
// listening socket (level-triggered) and round-robins accepted fds across
// all loops — `set_peers` wires the handoff ring, `adopt()` is the
// thread-safe entry (pending-queue + wake pipe).  This is the
// "round-robin fd handoff" alternative to SO_REUSEPORT: one accept point,
// no thundering herd, deterministic distribution.
//
// Backpressure: when a connection's pending write bytes exceed
// `write_buffer_cap`, the loop stops consuming its input (no recv, no new
// responses) until the kernel drains the socket below the cap — a slow
// reader throttles itself via TCP flow control instead of ballooning
// server memory.
//
// Drain (`request_drain`): stop accepting, answer every fully received
// request line already buffered, flush, close.  Connections whose peers
// stop reading are force-closed at `drain_deadline` so shutdown always
// terminates.
//
// Threading: all connection state is owned by the loop thread and touched
// by nothing else; the only cross-thread surface is the mutex-guarded
// pending/drain inbox plus the wake pipe (annotated below, proven by
// -Wthread-safety on clang).  The `respond` hook is called on the loop
// thread and must be thread-safe across loops (Server::respond_line is).
#pragma once

#include <chrono>
#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace rs::serve {

struct EventLoopOptions {
  std::size_t max_line_bytes = 65538;     // framing cap (largest batch + \r\n)
  std::size_t write_buffer_cap = 262144;  // backpressure threshold per conn
  std::chrono::milliseconds drain_deadline{5000};
};

struct EventLoopHooks {
  /// Answers one request line (no trailing newline in, none out).
  std::function<std::string(std::string_view line)> respond;
  /// Builds the transport-level error response for `code` ("oversized" or
  /// "bad_request") so the loop never depends on the response grammar.
  std::function<std::string(std::string_view code, std::string_view message)>
      transport_error;
  /// Counts one accepted connection (called on the accepting loop only).
  std::function<void()> on_connection;
};

class EventLoop {
 public:
  EventLoop(EventLoopOptions options, EventLoopHooks hooks);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Wires the round-robin handoff ring; required before start() on the
  /// loop that owns the listening socket.  `peers` may include this loop.
  void set_peers(std::vector<EventLoop*> peers);

  /// Registers the (already listening, nonblocking) socket with this loop.
  /// The fd stays owned by the caller.  Call before start().
  void set_listen_fd(int fd);

  /// Spawns the loop thread.  Returns false when epoll/pipe setup failed.
  [[nodiscard]] bool start();

  /// Hands a connected socket to this loop (thread-safe).  The loop takes
  /// ownership of the fd.
  void adopt(int fd) RS_EXCLUDES(mutex_);

  /// Asks the loop to drain and exit (thread-safe, idempotent).
  void request_drain() RS_EXCLUDES(mutex_);

  void join();

 private:
  struct Conn {
    int fd = -1;
    std::string in;               // received, not yet consumed
    std::string out;              // rendered, not yet sent
    std::size_t out_offset = 0;   // sent prefix of `out`
    bool read_ready = false;      // EPOLLIN edge seen, recv not yet EAGAIN
    bool peer_eof = false;
    bool close_after_flush = false;
    bool want_write = false;      // EPOLLOUT currently in the interest set
  };

  void run();
  void do_accept();
  void adopt_local(int fd);
  void handle_event(int fd, std::uint32_t events);
  void pump(Conn& conn);
  void process_lines(Conn& conn);
  void flush(Conn& conn);
  void finish_or_rearm(Conn& conn);
  void close_conn(int fd);
  void begin_drain();
  void wake();
  std::size_t pending_out(const Conn& conn) const noexcept {
    return conn.out.size() - conn.out_offset;
  }

  const EventLoopOptions options_;
  const EventLoopHooks hooks_;

  int epoll_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: [0] in the epoll set, [1] written
  int listen_fd_ = -1;
  std::vector<EventLoop*> peers_;
  std::size_t next_peer_ = 0;

  std::thread thread_;

  rs::util::Mutex mutex_;
  std::vector<int> inbox_ RS_GUARDED_BY(mutex_);  // fds awaiting adoption
  bool drain_requested_ RS_GUARDED_BY(mutex_) = false;

  // --- loop-thread-only state below (no lock: single owner) ---
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;
  bool draining_ = false;
  bool accept_ready_ = false;
  std::chrono::steady_clock::time_point drain_deadline_at_{};
};

}  // namespace rs::serve
