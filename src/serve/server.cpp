#include "src/serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "src/obs/span.h"
#include "src/query/request.h"
#include "src/util/strings.h"

namespace rs::serve {
namespace {

/// Nanosecond mtime of `path`, or -1 when it cannot be stat'ed (e.g. the
/// file is momentarily absent mid-rename).
std::int64_t watch_stamp(const std::string& path) {
  struct ::stat st {};
  if (::stat(path.c_str(), &st) != 0) return -1;
  return static_cast<std::int64_t>(st.st_mtim.tv_sec) * 1000000000 +
         static_cast<std::int64_t>(st.st_mtim.tv_nsec);
}

std::size_t loop_count_for(std::size_t num_threads) noexcept {
  return num_threads == 0 ? 1 : num_threads;
}

}  // namespace

Server::Server(std::shared_ptr<const rs::query::QueryEngine> engine,
               ServerOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_capacity, loop_count_for(options_.num_threads)),
      published_(std::make_shared<const Published>(
          Published{std::move(engine), 0})) {}

Server::~Server() { stop(); }

rs::util::Result<std::uint16_t> Server::start() {
  using R = rs::util::Result<std::uint16_t>;
  if (running()) return R::err("server already running");

  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return R::err("socket: " + rs::util::errno_message(errno));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string why = rs::util::errno_message(errno);
    ::close(fd);
    return R::err("bind 127.0.0.1:" + std::to_string(options_.port) + ": " +
                  why);
  }
  if (::listen(fd, options_.backlog) != 0) {
    const std::string why = rs::util::errno_message(errno);
    ::close(fd);
    return R::err("listen: " + why);
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const std::string why = rs::util::errno_message(errno);
    ::close(fd);
    return R::err("getsockname: " + why);
  }
  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);

  EventLoopOptions loop_options;
  // Framing cap: the largest legal line is a full batch plus "\r\n".
  loop_options.max_line_bytes = rs::query::kMaxBatchBytes + 2;
  loop_options.write_buffer_cap = options_.write_buffer_cap;
  loop_options.drain_deadline = options_.drain_deadline;

  EventLoopHooks hooks;
  hooks.respond = [this](std::string_view line) { return respond_line(line); };
  hooks.transport_error = [this](std::string_view code,
                                 std::string_view message) {
    // memory-order: relaxed — monotonic counter read only by stats().
    errors_.fetch_add(1, std::memory_order_relaxed);
    rs::obs::Registry::global().counter("serve.errors").increment();
    return rs::query::error_response(code, message);
  };
  hooks.on_connection = [this] {
    // memory-order: relaxed — monotonic counter read only by stats().
    connections_.fetch_add(1, std::memory_order_relaxed);
    rs::obs::Registry::global().counter("serve.connections").increment();
  };

  const std::size_t n = loop_count_for(options_.num_threads);
  loops_.clear();
  loops_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    loops_.push_back(std::make_unique<EventLoop>(loop_options, hooks));
  }
  std::vector<EventLoop*> ring;
  ring.reserve(n);
  for (const auto& loop : loops_) ring.push_back(loop.get());
  loops_[0]->set_peers(std::move(ring));
  loops_[0]->set_listen_fd(listen_fd_);

  for (std::size_t i = 0; i < n; ++i) {
    if (!loops_[i]->start()) {
      for (std::size_t j = 0; j < i; ++j) loops_[j]->request_drain();
      for (std::size_t j = 0; j < i; ++j) loops_[j]->join();
      loops_.clear();
      ::close(listen_fd_);
      listen_fd_ = -1;
      port_ = 0;
      return R::err("event loop " + std::to_string(i) +
                    " failed to start (epoll/pipe limit?)");
    }
  }

  if (options_.reload_factory) {
    if (!options_.watch_path.empty()) {
      watch_mtime_ = watch_stamp(options_.watch_path);
    }
    reload_thread_ = std::thread([this] { reload_loop(); });
  }
  running_.store(true, std::memory_order_release);
  return port_;
}

void Server::stop() {
  bool expected = true;
  if (!running_.compare_exchange_strong(expected, false)) return;

  // Loop 0 first: it owns the accept path, so once it has drained and
  // exited no new fd can be handed to a peer — draining peers before the
  // acceptor would race a handoff against the peer's exit.
  loops_[0]->request_drain();
  loops_[0]->join();
  for (std::size_t i = 1; i < loops_.size(); ++i) loops_[i]->request_drain();
  for (std::size_t i = 1; i < loops_.size(); ++i) loops_[i]->join();
  ::close(listen_fd_);
  listen_fd_ = -1;

  if (reload_thread_.joinable()) {
    {
      const rs::util::MutexLock lock(reload_mutex_);
      reload_stop_ = true;
      reload_cv_.notify_all();
    }
    reload_thread_.join();
  }
}

std::string Server::respond_line(std::string_view line) {
  rs::obs::Span span("serve/request");
  auto& registry = rs::obs::Registry::global();
  // memory-order: relaxed — monotonic counters read only by stats().
  requests_.fetch_add(1, std::memory_order_relaxed);
  registry.counter("serve.requests").increment();

  // Pin the published engine+epoch once for the whole line: every item of
  // a batch is answered by the same engine even when a hot swap lands
  // mid-batch, and the pinned shared_ptr keeps the old engine alive until
  // this request is done.
  const std::shared_ptr<const Published> pub =
      published_.load(std::memory_order_acquire);

  if (rs::query::looks_like_batch(line)) {
    auto items = rs::query::parse_batch_request(line);
    if (!items.ok()) {
      // memory-order: relaxed — monotonic counter read only by stats().
      errors_.fetch_add(1, std::memory_order_relaxed);
      registry.counter("serve.errors").increment();
      return rs::query::error_response("bad_request", items.error());
    }
    // memory-order: relaxed — monotonic counter read only by stats().
    batch_items_.fetch_add(items.value().size(), std::memory_order_relaxed);
    registry.counter("serve.batch_items").add(items.value().size());
    std::vector<std::string> responses;
    responses.reserve(items.value().size());
    for (const std::string_view item : items.value()) {
      if (rs::query::looks_like_batch(item)) {
        // memory-order: relaxed — monotonic counter read only by stats().
        errors_.fetch_add(1, std::memory_order_relaxed);
        registry.counter("serve.errors").increment();
        responses.push_back(rs::query::error_response(
            "bad_request", "batch requests may not nest"));
      } else {
        responses.push_back(respond_single(*pub, item));
      }
    }
    span.set_items(items.value().size());
    return rs::query::batch_response(responses);
  }
  return respond_single(*pub, line);
}

std::string Server::respond_single(const Published& pub,
                                   std::string_view line) {
  auto& registry = rs::obs::Registry::global();
  auto parsed = rs::query::parse_request(line);
  if (!parsed.ok()) {
    // memory-order: relaxed — monotonic counter read only by stats().
    errors_.fetch_add(1, std::memory_order_relaxed);
    registry.counter("serve.errors").increment();
    return rs::query::error_response("bad_request", parsed.error());
  }
  if (parsed.value().op == rs::query::Op::kServerStats) {
    return server_stats_response();
  }
  if (parsed.value().op == rs::query::Op::kReloadIndex) {
    return reload_response(pub);
  }

  // Epoch-prefixed key: an entry cached under a replaced engine can never
  // be served after a flip; dead-epoch keys age out of the LRU naturally.
  std::string key = std::to_string(pub.epoch);
  key.push_back('|');
  key += rs::query::canonical_request(parsed.value());
  if (auto cached = cache_.get(key)) {
    registry.counter("serve.cache_hits").increment();
    return *std::move(cached);
  }
  registry.counter("serve.cache_misses").increment();

  std::string response = pub.engine->handle(parsed.value());
  if (rs::query::QueryEngine::is_error_response(response)) {
    // memory-order: relaxed — monotonic counter read only by stats().
    errors_.fetch_add(1, std::memory_order_relaxed);
    registry.counter("serve.errors").increment();
  } else {
    cache_.put(key, response);
  }
  return response;
}

std::string Server::server_stats_response() const {
  const ServerStats s = stats();
  std::string out = "{\"op\":\"server_stats\",\"status\":\"ok\"";
  const auto field = [&out](const char* key, std::uint64_t value) {
    out.push_back(',');
    out.push_back('"');
    out += key;
    out += "\":";
    out += std::to_string(value);
  };
  field("connections", s.connections);
  field("requests", s.requests);
  field("errors", s.errors);
  field("cache_hits", s.cache_hits);
  field("cache_misses", s.cache_misses);
  field("cache_entries", cache_.size());
  field("cache_capacity", cache_.capacity());
  field("cache_shards", cache_.shard_count());
  field("threads", loop_count_for(options_.num_threads));
  field("batch_items", s.batch_items);
  field("epoch", s.epoch);
  field("reloads", s.reloads);
  field("reload_failures", s.reload_failures);
  out.push_back('}');
  return out;
}

std::string Server::reload_response(const Published& pub) {
  auto& registry = rs::obs::Registry::global();
  if (!options_.reload_factory) {
    // memory-order: relaxed — monotonic counter read only by stats().
    errors_.fetch_add(1, std::memory_order_relaxed);
    registry.counter("serve.errors").increment();
    return rs::query::error_response(
        "reload_unavailable",
        "server was started without a reloadable index source");
  }
  {
    const rs::util::MutexLock lock(reload_mutex_);
    ++reload_pending_;
    reload_cv_.notify_all();
  }
  // The flip is asynchronous (the reloader thread loads the index off the
  // event loops); `epoch` is the one this request pinned — clients poll
  // server_stats to observe the flip.
  return "{\"op\":\"reload_index\",\"status\":\"ok\",\"accepted\":true,"
         "\"epoch\":" +
         std::to_string(pub.epoch) + "}";
}

void Server::reload_loop() {
  while (true) {
    std::uint64_t take = 0;
    {
      const rs::util::MutexLock lock(reload_mutex_);
      if (reload_stop_) return;
      if (reload_pending_ == 0) {
        if (options_.watch_path.empty()) {
          reload_cv_.wait(reload_mutex_);
        } else {
          reload_cv_.wait_for(reload_mutex_, options_.watch_interval);
        }
      }
      if (reload_stop_) return;
      take = reload_pending_;
      reload_pending_ = 0;
    }
    if (take > 0) {
      run_reload();
    } else if (!options_.watch_path.empty()) {
      const std::int64_t stamp = watch_stamp(options_.watch_path);
      if (stamp >= 0 && stamp != watch_mtime_) {
        watch_mtime_ = stamp;
        run_reload();
      }
    }
  }
}

void Server::run_reload() {
  auto made = options_.reload_factory();
  if (!made.ok() || made.value() == nullptr) {
    // Keep serving the current epoch: a broken index on disk must never
    // take down a healthy server.
    // memory-order: relaxed — monotonic counter read only by stats().
    reload_failures_.fetch_add(1, std::memory_order_relaxed);
    rs::obs::Registry::global().counter("serve.reload_failures").increment();
    return;
  }
  swap_engine(std::move(made).take());
  // memory-order: relaxed — monotonic counter read only by stats().
  reloads_.fetch_add(1, std::memory_order_relaxed);
  rs::obs::Registry::global().counter("serve.reloads").increment();
}

void Server::swap_engine(
    std::shared_ptr<const rs::query::QueryEngine> engine) {
  auto cur = published_.load(std::memory_order_acquire);
  std::shared_ptr<const Published> next;
  do {
    next = std::make_shared<const Published>(
        Published{engine, cur->epoch + 1});
  } while (!published_.compare_exchange_weak(cur, next,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire));
}

std::uint64_t Server::epoch() const {
  return published_.load(std::memory_order_acquire)->epoch;
}

ServerStats Server::stats() const {
  ServerStats s;
  // memory-order: relaxed — point-in-time snapshot; fields may be mutually
  // skewed by in-flight requests, which callers of stats() accept.
  s.connections = connections_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.batch_items = batch_items_.load(std::memory_order_relaxed);
  s.reloads = reloads_.load(std::memory_order_relaxed);
  s.reload_failures = reload_failures_.load(std::memory_order_relaxed);
  s.epoch = epoch();
  const LruCache::Counters c = cache_.counters();
  s.cache_hits = c.hits;
  s.cache_misses = c.misses;
  return s;
}

}  // namespace rs::serve
