#include "src/serve/sharded_cache.h"

namespace rs::serve {
namespace {

std::uint64_t fnv1a(std::string_view key) noexcept {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

ShardedCache::ShardedCache(std::size_t capacity, std::size_t shard_hint)
    : capacity_(capacity) {
  const std::size_t shards = next_pow2(shard_hint == 0 ? 1 : shard_hint);
  const std::size_t per_shard =
      capacity == 0 ? 0 : (capacity + shards - 1) / shards;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<LruCache>(per_shard));
  }
}

std::size_t ShardedCache::shard_of(std::string_view key) const noexcept {
  return static_cast<std::size_t>(fnv1a(key)) & (shards_.size() - 1);
}

std::optional<std::string> ShardedCache::get(const std::string& key) {
  return shards_[shard_of(key)]->get(key);
}

void ShardedCache::put(const std::string& key, std::string value) {
  shards_[shard_of(key)]->put(key, std::move(value));
}

std::size_t ShardedCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->size();
  return total;
}

LruCache::Counters ShardedCache::counters() const {
  LruCache::Counters total;
  for (const auto& shard : shards_) {
    const LruCache::Counters c = shard->counters();
    total.hits += c.hits;
    total.misses += c.misses;
    total.evictions += c.evictions;
  }
  return total;
}

}  // namespace rs::serve
