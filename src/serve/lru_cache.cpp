#include "src/serve/lru_cache.h"

namespace rs::serve {

std::optional<std::string> LruCache::get(const std::string& key) {
  const rs::util::MutexLock lock(mutex_);
  const auto it = by_key_.find(key);
  if (it == by_key_.end()) {
    ++counters_.misses;
    return std::nullopt;
  }
  ++counters_.hits;
  order_.splice(order_.begin(), order_, it->second);
  return it->second->second;
}

void LruCache::put(const std::string& key, std::string value) {
  if (capacity_ == 0) return;
  const rs::util::MutexLock lock(mutex_);
  const auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    it->second->second = std::move(value);
    order_.splice(order_.begin(), order_, it->second);
    return;
  }
  order_.emplace_front(key, std::move(value));
  by_key_.emplace(key, order_.begin());
  if (by_key_.size() > capacity_) {
    by_key_.erase(order_.back().first);
    order_.pop_back();
    ++counters_.evictions;
  }
}

std::size_t LruCache::size() const {
  const rs::util::MutexLock lock(mutex_);
  return by_key_.size();
}

LruCache::Counters LruCache::counters() const {
  const rs::util::MutexLock lock(mutex_);
  return counters_;
}

}  // namespace rs::serve
