// A thread-safe LRU cache for canonicalized-request -> response strings.
//
// The serving layer keys on canonical_request() output, so two requests
// that mean the same thing (field order, default scope, hex case) share
// one entry.  Capacity is a fixed entry count; inserting beyond it evicts
// the least-recently-used entry.  get() counts hits and misses — the
// numbers `server_stats` and BENCH_serve.json report.
//
// Concurrency: one mutex around the map+list.  Entries are immutable
// response strings, so a hit copies the value out under the lock and the
// caller works lock-free from there.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

namespace rs::serve {

class LruCache {
 public:
  /// `capacity` = max entries; 0 disables caching entirely (get always
  /// misses, put is a no-op) without branching at call sites.
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  LruCache(const LruCache&) = delete;
  LruCache& operator=(const LruCache&) = delete;

  /// Returns the cached response and marks the entry most-recently-used.
  std::optional<std::string> get(const std::string& key);

  /// Inserts or refreshes; evicts the LRU entry when over capacity.
  void put(const std::string& key, std::string value);

  std::size_t size() const;
  std::size_t capacity() const noexcept { return capacity_; }

  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };
  Counters counters() const;

 private:
  using Entry = std::pair<std::string, std::string>;  // key, response

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> order_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> by_key_;
  Counters counters_;
};

}  // namespace rs::serve
