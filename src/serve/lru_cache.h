// A thread-safe LRU cache for canonicalized-request -> response strings.
//
// The serving layer keys on canonical_request() output, so two requests
// that mean the same thing (field order, default scope, hex case) share
// one entry.  Capacity is a fixed entry count; inserting beyond it evicts
// the least-recently-used entry.  get() counts hits and misses — the
// numbers `server_stats` and BENCH_serve.json report.
//
// Concurrency: one mutex around the map+list, proven by -Wthread-safety
// (every field is RS_GUARDED_BY(mutex_); see docs/STATIC_ANALYSIS.md).
// Entries are immutable response strings, so a hit copies the value out
// under the lock and the caller works lock-free from there.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace rs::serve {

class LruCache {
 public:
  /// `capacity` = max entries; 0 disables caching entirely (get always
  /// misses, put is a no-op) without branching at call sites.
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  LruCache(const LruCache&) = delete;
  LruCache& operator=(const LruCache&) = delete;

  /// Returns the cached response and marks the entry most-recently-used.
  [[nodiscard]] std::optional<std::string> get(const std::string& key)
      RS_EXCLUDES(mutex_);

  /// Inserts or refreshes; evicts the LRU entry when over capacity.
  void put(const std::string& key, std::string value) RS_EXCLUDES(mutex_);

  [[nodiscard]] std::size_t size() const RS_EXCLUDES(mutex_);
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };
  [[nodiscard]] Counters counters() const RS_EXCLUDES(mutex_);

 private:
  using Entry = std::pair<std::string, std::string>;  // key, response

  const std::size_t capacity_;
  mutable rs::util::Mutex mutex_;
  // front = most recently used
  std::list<Entry> order_ RS_GUARDED_BY(mutex_);
  std::unordered_map<std::string, std::list<Entry>::iterator> by_key_
      RS_GUARDED_BY(mutex_);
  Counters counters_ RS_GUARDED_BY(mutex_);
};

}  // namespace rs::serve
