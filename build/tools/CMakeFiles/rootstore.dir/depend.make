# Empty dependencies file for rootstore.
# This may be replaced when dependencies are built.
