file(REMOVE_RECURSE
  "CMakeFiles/rootstore.dir/rootstore.cpp.o"
  "CMakeFiles/rootstore.dir/rootstore.cpp.o.d"
  "rootstore"
  "rootstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rootstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
