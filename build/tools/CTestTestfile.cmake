# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_formats "/root/repo/build/tools/rootstore" "formats")
set_tests_properties(cli_formats PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_report_table3 "/root/repo/build/tools/rootstore" "report" "table3")
set_tests_properties(cli_report_table3 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_report_fig3_csv "/root/repo/build/tools/rootstore" "report" "fig3" "--csv")
set_tests_properties(cli_report_fig3_csv PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_dataset_roundtrip "sh" "-c" "/root/repo/build/tools/rootstore dataset export /root/repo/build/cli-dataset && /root/repo/build/tools/rootstore dataset verify /root/repo/build/cli-dataset")
set_tests_properties(cli_dataset_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
