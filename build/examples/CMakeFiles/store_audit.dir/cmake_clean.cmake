file(REMOVE_RECURSE
  "CMakeFiles/store_audit.dir/store_audit.cpp.o"
  "CMakeFiles/store_audit.dir/store_audit.cpp.o.d"
  "store_audit"
  "store_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
