# Empty dependencies file for store_audit.
# This may be replaced when dependencies are built.
