# Empty dependencies file for derivative_drift.
# This may be replaced when dependencies are built.
