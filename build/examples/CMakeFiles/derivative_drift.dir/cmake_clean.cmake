file(REMOVE_RECURSE
  "CMakeFiles/derivative_drift.dir/derivative_drift.cpp.o"
  "CMakeFiles/derivative_drift.dir/derivative_drift.cpp.o.d"
  "derivative_drift"
  "derivative_drift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/derivative_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
