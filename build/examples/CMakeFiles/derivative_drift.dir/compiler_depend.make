# Empty compiler generated dependencies file for derivative_drift.
# This may be replaced when dependencies are built.
