# Empty compiler generated dependencies file for store_diff.
# This may be replaced when dependencies are built.
