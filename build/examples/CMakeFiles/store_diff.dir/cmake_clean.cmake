file(REMOVE_RECURSE
  "CMakeFiles/store_diff.dir/store_diff.cpp.o"
  "CMakeFiles/store_diff.dir/store_diff.cpp.o.d"
  "store_diff"
  "store_diff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
