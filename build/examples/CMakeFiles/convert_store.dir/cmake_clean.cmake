file(REMOVE_RECURSE
  "CMakeFiles/convert_store.dir/convert_store.cpp.o"
  "CMakeFiles/convert_store.dir/convert_store.cpp.o.d"
  "convert_store"
  "convert_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convert_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
