# Empty dependencies file for convert_store.
# This may be replaced when dependencies are built.
