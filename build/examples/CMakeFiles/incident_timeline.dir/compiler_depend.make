# Empty compiler generated dependencies file for incident_timeline.
# This may be replaced when dependencies are built.
