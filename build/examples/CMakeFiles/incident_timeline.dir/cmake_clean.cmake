file(REMOVE_RECURSE
  "CMakeFiles/incident_timeline.dir/incident_timeline.cpp.o"
  "CMakeFiles/incident_timeline.dir/incident_timeline.cpp.o.d"
  "incident_timeline"
  "incident_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incident_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
