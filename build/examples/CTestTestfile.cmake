# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_store_audit "/root/repo/build/examples/store_audit")
set_tests_properties(example_store_audit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_derivative_drift "/root/repo/build/examples/derivative_drift" "NodeJS")
set_tests_properties(example_derivative_drift PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_incident_timeline "/root/repo/build/examples/incident_timeline" "WoSign")
set_tests_properties(example_incident_timeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_convert_store "/root/repo/build/examples/convert_store" "--demo")
set_tests_properties(example_convert_store PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_store_diff "/root/repo/build/examples/store_diff" "--demo")
set_tests_properties(example_store_diff PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_export_dataset "/root/repo/build/examples/export_dataset" "/root/repo/build/example-dataset")
set_tests_properties(example_export_dataset PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
