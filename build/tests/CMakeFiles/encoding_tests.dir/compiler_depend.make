# Empty compiler generated dependencies file for encoding_tests.
# This may be replaced when dependencies are built.
