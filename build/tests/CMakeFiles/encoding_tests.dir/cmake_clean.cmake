file(REMOVE_RECURSE
  "CMakeFiles/encoding_tests.dir/encoding/base64_test.cpp.o"
  "CMakeFiles/encoding_tests.dir/encoding/base64_test.cpp.o.d"
  "CMakeFiles/encoding_tests.dir/encoding/pem_test.cpp.o"
  "CMakeFiles/encoding_tests.dir/encoding/pem_test.cpp.o.d"
  "encoding_tests"
  "encoding_tests.pdb"
  "encoding_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encoding_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
