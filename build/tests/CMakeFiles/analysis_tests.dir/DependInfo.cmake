
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis/attribution_test.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/attribution_test.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/attribution_test.cpp.o.d"
  "/root/repo/tests/analysis/cadence_test.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/cadence_test.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/cadence_test.cpp.o.d"
  "/root/repo/tests/analysis/churn_test.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/churn_test.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/churn_test.cpp.o.d"
  "/root/repo/tests/analysis/cluster_test.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/cluster_test.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/cluster_test.cpp.o.d"
  "/root/repo/tests/analysis/diffs_test.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/diffs_test.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/diffs_test.cpp.o.d"
  "/root/repo/tests/analysis/exclusive_test.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/exclusive_test.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/exclusive_test.cpp.o.d"
  "/root/repo/tests/analysis/hygiene_test.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/hygiene_test.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/hygiene_test.cpp.o.d"
  "/root/repo/tests/analysis/incident_response_test.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/incident_response_test.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/incident_response_test.cpp.o.d"
  "/root/repo/tests/analysis/jaccard_test.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/jaccard_test.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/jaccard_test.cpp.o.d"
  "/root/repo/tests/analysis/mds_test.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/mds_test.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/mds_test.cpp.o.d"
  "/root/repo/tests/analysis/operators_test.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/operators_test.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/operators_test.cpp.o.d"
  "/root/repo/tests/analysis/overlay_incident_test.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/overlay_incident_test.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/overlay_incident_test.cpp.o.d"
  "/root/repo/tests/analysis/removals_test.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/removals_test.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/removals_test.cpp.o.d"
  "/root/repo/tests/analysis/staleness_test.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/staleness_test.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/staleness_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/rs_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/rs_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/formats/CMakeFiles/rs_formats.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/rs_store.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/rs_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/rs_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/asn1/CMakeFiles/rs_asn1.dir/DependInfo.cmake"
  "/root/repo/build/src/x509/CMakeFiles/rs_x509.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
