file(REMOVE_RECURSE
  "CMakeFiles/analysis_tests.dir/analysis/attribution_test.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/attribution_test.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/cadence_test.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/cadence_test.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/churn_test.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/churn_test.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/cluster_test.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/cluster_test.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/diffs_test.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/diffs_test.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/exclusive_test.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/exclusive_test.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/hygiene_test.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/hygiene_test.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/incident_response_test.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/incident_response_test.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/jaccard_test.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/jaccard_test.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/mds_test.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/mds_test.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/operators_test.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/operators_test.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/overlay_incident_test.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/overlay_incident_test.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/removals_test.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/removals_test.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/staleness_test.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/staleness_test.cpp.o.d"
  "analysis_tests"
  "analysis_tests.pdb"
  "analysis_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
