
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/formats/authroot_test.cpp" "tests/CMakeFiles/formats_tests.dir/formats/authroot_test.cpp.o" "gcc" "tests/CMakeFiles/formats_tests.dir/formats/authroot_test.cpp.o.d"
  "/root/repo/tests/formats/cert_dir_test.cpp" "tests/CMakeFiles/formats_tests.dir/formats/cert_dir_test.cpp.o" "gcc" "tests/CMakeFiles/formats_tests.dir/formats/cert_dir_test.cpp.o.d"
  "/root/repo/tests/formats/certdata_test.cpp" "tests/CMakeFiles/formats_tests.dir/formats/certdata_test.cpp.o" "gcc" "tests/CMakeFiles/formats_tests.dir/formats/certdata_test.cpp.o.d"
  "/root/repo/tests/formats/cross_format_test.cpp" "tests/CMakeFiles/formats_tests.dir/formats/cross_format_test.cpp.o" "gcc" "tests/CMakeFiles/formats_tests.dir/formats/cross_format_test.cpp.o.d"
  "/root/repo/tests/formats/dataset_io_test.cpp" "tests/CMakeFiles/formats_tests.dir/formats/dataset_io_test.cpp.o" "gcc" "tests/CMakeFiles/formats_tests.dir/formats/dataset_io_test.cpp.o.d"
  "/root/repo/tests/formats/jks_test.cpp" "tests/CMakeFiles/formats_tests.dir/formats/jks_test.cpp.o" "gcc" "tests/CMakeFiles/formats_tests.dir/formats/jks_test.cpp.o.d"
  "/root/repo/tests/formats/parser_robustness_test.cpp" "tests/CMakeFiles/formats_tests.dir/formats/parser_robustness_test.cpp.o" "gcc" "tests/CMakeFiles/formats_tests.dir/formats/parser_robustness_test.cpp.o.d"
  "/root/repo/tests/formats/pem_bundle_test.cpp" "tests/CMakeFiles/formats_tests.dir/formats/pem_bundle_test.cpp.o" "gcc" "tests/CMakeFiles/formats_tests.dir/formats/pem_bundle_test.cpp.o.d"
  "/root/repo/tests/formats/portable_test.cpp" "tests/CMakeFiles/formats_tests.dir/formats/portable_test.cpp.o" "gcc" "tests/CMakeFiles/formats_tests.dir/formats/portable_test.cpp.o.d"
  "/root/repo/tests/formats/signed_envelope_test.cpp" "tests/CMakeFiles/formats_tests.dir/formats/signed_envelope_test.cpp.o" "gcc" "tests/CMakeFiles/formats_tests.dir/formats/signed_envelope_test.cpp.o.d"
  "/root/repo/tests/formats/sniff_test.cpp" "tests/CMakeFiles/formats_tests.dir/formats/sniff_test.cpp.o" "gcc" "tests/CMakeFiles/formats_tests.dir/formats/sniff_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/rs_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/rs_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/formats/CMakeFiles/rs_formats.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/rs_store.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/rs_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/rs_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/asn1/CMakeFiles/rs_asn1.dir/DependInfo.cmake"
  "/root/repo/build/src/x509/CMakeFiles/rs_x509.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
