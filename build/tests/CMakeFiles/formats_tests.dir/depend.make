# Empty dependencies file for formats_tests.
# This may be replaced when dependencies are built.
