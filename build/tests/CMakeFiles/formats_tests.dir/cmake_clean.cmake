file(REMOVE_RECURSE
  "CMakeFiles/formats_tests.dir/formats/authroot_test.cpp.o"
  "CMakeFiles/formats_tests.dir/formats/authroot_test.cpp.o.d"
  "CMakeFiles/formats_tests.dir/formats/cert_dir_test.cpp.o"
  "CMakeFiles/formats_tests.dir/formats/cert_dir_test.cpp.o.d"
  "CMakeFiles/formats_tests.dir/formats/certdata_test.cpp.o"
  "CMakeFiles/formats_tests.dir/formats/certdata_test.cpp.o.d"
  "CMakeFiles/formats_tests.dir/formats/cross_format_test.cpp.o"
  "CMakeFiles/formats_tests.dir/formats/cross_format_test.cpp.o.d"
  "CMakeFiles/formats_tests.dir/formats/dataset_io_test.cpp.o"
  "CMakeFiles/formats_tests.dir/formats/dataset_io_test.cpp.o.d"
  "CMakeFiles/formats_tests.dir/formats/jks_test.cpp.o"
  "CMakeFiles/formats_tests.dir/formats/jks_test.cpp.o.d"
  "CMakeFiles/formats_tests.dir/formats/parser_robustness_test.cpp.o"
  "CMakeFiles/formats_tests.dir/formats/parser_robustness_test.cpp.o.d"
  "CMakeFiles/formats_tests.dir/formats/pem_bundle_test.cpp.o"
  "CMakeFiles/formats_tests.dir/formats/pem_bundle_test.cpp.o.d"
  "CMakeFiles/formats_tests.dir/formats/portable_test.cpp.o"
  "CMakeFiles/formats_tests.dir/formats/portable_test.cpp.o.d"
  "CMakeFiles/formats_tests.dir/formats/signed_envelope_test.cpp.o"
  "CMakeFiles/formats_tests.dir/formats/signed_envelope_test.cpp.o.d"
  "CMakeFiles/formats_tests.dir/formats/sniff_test.cpp.o"
  "CMakeFiles/formats_tests.dir/formats/sniff_test.cpp.o.d"
  "formats_tests"
  "formats_tests.pdb"
  "formats_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/formats_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
