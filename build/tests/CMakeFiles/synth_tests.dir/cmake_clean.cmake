file(REMOVE_RECURSE
  "CMakeFiles/synth_tests.dir/synth/derivatives_test.cpp.o"
  "CMakeFiles/synth_tests.dir/synth/derivatives_test.cpp.o.d"
  "CMakeFiles/synth_tests.dir/synth/program_model_test.cpp.o"
  "CMakeFiles/synth_tests.dir/synth/program_model_test.cpp.o.d"
  "CMakeFiles/synth_tests.dir/synth/scenario_fidelity_test.cpp.o"
  "CMakeFiles/synth_tests.dir/synth/scenario_fidelity_test.cpp.o.d"
  "CMakeFiles/synth_tests.dir/synth/scenario_test.cpp.o"
  "CMakeFiles/synth_tests.dir/synth/scenario_test.cpp.o.d"
  "CMakeFiles/synth_tests.dir/synth/simulator_test.cpp.o"
  "CMakeFiles/synth_tests.dir/synth/simulator_test.cpp.o.d"
  "synth_tests"
  "synth_tests.pdb"
  "synth_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synth_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
