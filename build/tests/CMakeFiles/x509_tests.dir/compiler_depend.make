# Empty compiler generated dependencies file for x509_tests.
# This may be replaced when dependencies are built.
