file(REMOVE_RECURSE
  "CMakeFiles/x509_tests.dir/x509/builder_test.cpp.o"
  "CMakeFiles/x509_tests.dir/x509/builder_test.cpp.o.d"
  "CMakeFiles/x509_tests.dir/x509/certificate_test.cpp.o"
  "CMakeFiles/x509_tests.dir/x509/certificate_test.cpp.o.d"
  "CMakeFiles/x509_tests.dir/x509/extensions_test.cpp.o"
  "CMakeFiles/x509_tests.dir/x509/extensions_test.cpp.o.d"
  "CMakeFiles/x509_tests.dir/x509/lint_test.cpp.o"
  "CMakeFiles/x509_tests.dir/x509/lint_test.cpp.o.d"
  "CMakeFiles/x509_tests.dir/x509/name_test.cpp.o"
  "CMakeFiles/x509_tests.dir/x509/name_test.cpp.o.d"
  "CMakeFiles/x509_tests.dir/x509/public_key_test.cpp.o"
  "CMakeFiles/x509_tests.dir/x509/public_key_test.cpp.o.d"
  "x509_tests"
  "x509_tests.pdb"
  "x509_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x509_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
