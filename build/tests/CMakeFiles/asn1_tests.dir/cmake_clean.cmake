file(REMOVE_RECURSE
  "CMakeFiles/asn1_tests.dir/asn1/der_roundtrip_test.cpp.o"
  "CMakeFiles/asn1_tests.dir/asn1/der_roundtrip_test.cpp.o.d"
  "CMakeFiles/asn1_tests.dir/asn1/oid_test.cpp.o"
  "CMakeFiles/asn1_tests.dir/asn1/oid_test.cpp.o.d"
  "CMakeFiles/asn1_tests.dir/asn1/reader_test.cpp.o"
  "CMakeFiles/asn1_tests.dir/asn1/reader_test.cpp.o.d"
  "CMakeFiles/asn1_tests.dir/asn1/time_test.cpp.o"
  "CMakeFiles/asn1_tests.dir/asn1/time_test.cpp.o.d"
  "asn1_tests"
  "asn1_tests.pdb"
  "asn1_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asn1_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
