# Empty compiler generated dependencies file for asn1_tests.
# This may be replaced when dependencies are built.
