# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_tests[1]_include.cmake")
include("/root/repo/build/tests/encoding_tests[1]_include.cmake")
include("/root/repo/build/tests/crypto_tests[1]_include.cmake")
include("/root/repo/build/tests/asn1_tests[1]_include.cmake")
include("/root/repo/build/tests/x509_tests[1]_include.cmake")
include("/root/repo/build/tests/store_tests[1]_include.cmake")
include("/root/repo/build/tests/formats_tests[1]_include.cmake")
include("/root/repo/build/tests/synth_tests[1]_include.cmake")
include("/root/repo/build/tests/analysis_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
