# Empty compiler generated dependencies file for fig4_derivative_diffs.
# This may be replaced when dependencies are built.
