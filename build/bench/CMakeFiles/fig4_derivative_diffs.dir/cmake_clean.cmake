file(REMOVE_RECURSE
  "CMakeFiles/fig4_derivative_diffs.dir/fig4_derivative_diffs.cpp.o"
  "CMakeFiles/fig4_derivative_diffs.dir/fig4_derivative_diffs.cpp.o.d"
  "fig4_derivative_diffs"
  "fig4_derivative_diffs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_derivative_diffs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
