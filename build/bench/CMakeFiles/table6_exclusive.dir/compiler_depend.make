# Empty compiler generated dependencies file for table6_exclusive.
# This may be replaced when dependencies are built.
