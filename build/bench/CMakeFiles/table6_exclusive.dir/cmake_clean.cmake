file(REMOVE_RECURSE
  "CMakeFiles/table6_exclusive.dir/table6_exclusive.cpp.o"
  "CMakeFiles/table6_exclusive.dir/table6_exclusive.cpp.o.d"
  "table6_exclusive"
  "table6_exclusive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_exclusive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
