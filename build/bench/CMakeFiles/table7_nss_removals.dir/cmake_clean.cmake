file(REMOVE_RECURSE
  "CMakeFiles/table7_nss_removals.dir/table7_nss_removals.cpp.o"
  "CMakeFiles/table7_nss_removals.dir/table7_nss_removals.cpp.o.d"
  "table7_nss_removals"
  "table7_nss_removals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_nss_removals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
