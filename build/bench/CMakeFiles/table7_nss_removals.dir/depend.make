# Empty dependencies file for table7_nss_removals.
# This may be replaced when dependencies are built.
