# Empty compiler generated dependencies file for table3_hygiene.
# This may be replaced when dependencies are built.
