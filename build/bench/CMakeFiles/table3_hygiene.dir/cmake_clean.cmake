file(REMOVE_RECURSE
  "CMakeFiles/table3_hygiene.dir/table3_hygiene.cpp.o"
  "CMakeFiles/table3_hygiene.dir/table3_hygiene.cpp.o.d"
  "table3_hygiene"
  "table3_hygiene.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_hygiene.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
