# Empty compiler generated dependencies file for table5_software_survey.
# This may be replaced when dependencies are built.
