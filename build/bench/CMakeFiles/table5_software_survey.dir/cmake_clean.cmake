file(REMOVE_RECURSE
  "CMakeFiles/table5_software_survey.dir/table5_software_survey.cpp.o"
  "CMakeFiles/table5_software_survey.dir/table5_software_survey.cpp.o.d"
  "table5_software_survey"
  "table5_software_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_software_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
