file(REMOVE_RECURSE
  "CMakeFiles/fig2_ecosystem.dir/fig2_ecosystem.cpp.o"
  "CMakeFiles/fig2_ecosystem.dir/fig2_ecosystem.cpp.o.d"
  "fig2_ecosystem"
  "fig2_ecosystem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_ecosystem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
