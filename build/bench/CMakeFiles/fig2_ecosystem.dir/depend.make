# Empty dependencies file for fig2_ecosystem.
# This may be replaced when dependencies are built.
