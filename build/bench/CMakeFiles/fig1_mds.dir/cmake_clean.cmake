file(REMOVE_RECURSE
  "CMakeFiles/fig1_mds.dir/fig1_mds.cpp.o"
  "CMakeFiles/fig1_mds.dir/fig1_mds.cpp.o.d"
  "fig1_mds"
  "fig1_mds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_mds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
