# Empty compiler generated dependencies file for fig1_mds.
# This may be replaced when dependencies are built.
