file(REMOVE_RECURSE
  "CMakeFiles/table4_removals.dir/table4_removals.cpp.o"
  "CMakeFiles/table4_removals.dir/table4_removals.cpp.o.d"
  "table4_removals"
  "table4_removals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_removals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
