# Empty dependencies file for table4_removals.
# This may be replaced when dependencies are built.
