# Empty dependencies file for perf_formats.
# This may be replaced when dependencies are built.
