file(REMOVE_RECURSE
  "CMakeFiles/perf_formats.dir/perf_formats.cpp.o"
  "CMakeFiles/perf_formats.dir/perf_formats.cpp.o.d"
  "perf_formats"
  "perf_formats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
