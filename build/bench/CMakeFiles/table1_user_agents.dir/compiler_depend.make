# Empty compiler generated dependencies file for table1_user_agents.
# This may be replaced when dependencies are built.
