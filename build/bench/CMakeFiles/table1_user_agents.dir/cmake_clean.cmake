file(REMOVE_RECURSE
  "CMakeFiles/table1_user_agents.dir/table1_user_agents.cpp.o"
  "CMakeFiles/table1_user_agents.dir/table1_user_agents.cpp.o.d"
  "table1_user_agents"
  "table1_user_agents.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_user_agents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
