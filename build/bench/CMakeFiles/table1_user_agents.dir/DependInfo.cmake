
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_user_agents.cpp" "bench/CMakeFiles/table1_user_agents.dir/table1_user_agents.cpp.o" "gcc" "bench/CMakeFiles/table1_user_agents.dir/table1_user_agents.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/rs_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/rs_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/formats/CMakeFiles/rs_formats.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/rs_store.dir/DependInfo.cmake"
  "/root/repo/build/src/x509/CMakeFiles/rs_x509.dir/DependInfo.cmake"
  "/root/repo/build/src/asn1/CMakeFiles/rs_asn1.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/rs_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/rs_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
