file(REMOVE_RECURSE
  "librs_synth.a"
)
