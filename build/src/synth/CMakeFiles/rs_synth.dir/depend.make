# Empty dependencies file for rs_synth.
# This may be replaced when dependencies are built.
