file(REMOVE_RECURSE
  "CMakeFiles/rs_synth.dir/derivatives.cpp.o"
  "CMakeFiles/rs_synth.dir/derivatives.cpp.o.d"
  "CMakeFiles/rs_synth.dir/incidents.cpp.o"
  "CMakeFiles/rs_synth.dir/incidents.cpp.o.d"
  "CMakeFiles/rs_synth.dir/paper_reference.cpp.o"
  "CMakeFiles/rs_synth.dir/paper_reference.cpp.o.d"
  "CMakeFiles/rs_synth.dir/paper_scenario.cpp.o"
  "CMakeFiles/rs_synth.dir/paper_scenario.cpp.o.d"
  "CMakeFiles/rs_synth.dir/program_model.cpp.o"
  "CMakeFiles/rs_synth.dir/program_model.cpp.o.d"
  "CMakeFiles/rs_synth.dir/root_spec.cpp.o"
  "CMakeFiles/rs_synth.dir/root_spec.cpp.o.d"
  "CMakeFiles/rs_synth.dir/simulator.cpp.o"
  "CMakeFiles/rs_synth.dir/simulator.cpp.o.d"
  "CMakeFiles/rs_synth.dir/software_survey.cpp.o"
  "CMakeFiles/rs_synth.dir/software_survey.cpp.o.d"
  "CMakeFiles/rs_synth.dir/user_agents.cpp.o"
  "CMakeFiles/rs_synth.dir/user_agents.cpp.o.d"
  "librs_synth.a"
  "librs_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rs_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
