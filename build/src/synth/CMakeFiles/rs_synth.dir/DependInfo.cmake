
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/derivatives.cpp" "src/synth/CMakeFiles/rs_synth.dir/derivatives.cpp.o" "gcc" "src/synth/CMakeFiles/rs_synth.dir/derivatives.cpp.o.d"
  "/root/repo/src/synth/incidents.cpp" "src/synth/CMakeFiles/rs_synth.dir/incidents.cpp.o" "gcc" "src/synth/CMakeFiles/rs_synth.dir/incidents.cpp.o.d"
  "/root/repo/src/synth/paper_reference.cpp" "src/synth/CMakeFiles/rs_synth.dir/paper_reference.cpp.o" "gcc" "src/synth/CMakeFiles/rs_synth.dir/paper_reference.cpp.o.d"
  "/root/repo/src/synth/paper_scenario.cpp" "src/synth/CMakeFiles/rs_synth.dir/paper_scenario.cpp.o" "gcc" "src/synth/CMakeFiles/rs_synth.dir/paper_scenario.cpp.o.d"
  "/root/repo/src/synth/program_model.cpp" "src/synth/CMakeFiles/rs_synth.dir/program_model.cpp.o" "gcc" "src/synth/CMakeFiles/rs_synth.dir/program_model.cpp.o.d"
  "/root/repo/src/synth/root_spec.cpp" "src/synth/CMakeFiles/rs_synth.dir/root_spec.cpp.o" "gcc" "src/synth/CMakeFiles/rs_synth.dir/root_spec.cpp.o.d"
  "/root/repo/src/synth/simulator.cpp" "src/synth/CMakeFiles/rs_synth.dir/simulator.cpp.o" "gcc" "src/synth/CMakeFiles/rs_synth.dir/simulator.cpp.o.d"
  "/root/repo/src/synth/software_survey.cpp" "src/synth/CMakeFiles/rs_synth.dir/software_survey.cpp.o" "gcc" "src/synth/CMakeFiles/rs_synth.dir/software_survey.cpp.o.d"
  "/root/repo/src/synth/user_agents.cpp" "src/synth/CMakeFiles/rs_synth.dir/user_agents.cpp.o" "gcc" "src/synth/CMakeFiles/rs_synth.dir/user_agents.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/store/CMakeFiles/rs_store.dir/DependInfo.cmake"
  "/root/repo/build/src/formats/CMakeFiles/rs_formats.dir/DependInfo.cmake"
  "/root/repo/build/src/x509/CMakeFiles/rs_x509.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/rs_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/asn1/CMakeFiles/rs_asn1.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/rs_encoding.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
