# Empty dependencies file for rs_asn1.
# This may be replaced when dependencies are built.
