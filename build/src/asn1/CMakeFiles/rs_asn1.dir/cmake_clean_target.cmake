file(REMOVE_RECURSE
  "librs_asn1.a"
)
