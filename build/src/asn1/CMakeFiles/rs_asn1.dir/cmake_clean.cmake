file(REMOVE_RECURSE
  "CMakeFiles/rs_asn1.dir/oid.cpp.o"
  "CMakeFiles/rs_asn1.dir/oid.cpp.o.d"
  "CMakeFiles/rs_asn1.dir/reader.cpp.o"
  "CMakeFiles/rs_asn1.dir/reader.cpp.o.d"
  "CMakeFiles/rs_asn1.dir/time.cpp.o"
  "CMakeFiles/rs_asn1.dir/time.cpp.o.d"
  "CMakeFiles/rs_asn1.dir/writer.cpp.o"
  "CMakeFiles/rs_asn1.dir/writer.cpp.o.d"
  "librs_asn1.a"
  "librs_asn1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rs_asn1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
