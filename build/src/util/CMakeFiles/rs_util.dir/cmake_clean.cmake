file(REMOVE_RECURSE
  "CMakeFiles/rs_util.dir/date.cpp.o"
  "CMakeFiles/rs_util.dir/date.cpp.o.d"
  "CMakeFiles/rs_util.dir/hex.cpp.o"
  "CMakeFiles/rs_util.dir/hex.cpp.o.d"
  "CMakeFiles/rs_util.dir/stats.cpp.o"
  "CMakeFiles/rs_util.dir/stats.cpp.o.d"
  "CMakeFiles/rs_util.dir/strings.cpp.o"
  "CMakeFiles/rs_util.dir/strings.cpp.o.d"
  "CMakeFiles/rs_util.dir/table.cpp.o"
  "CMakeFiles/rs_util.dir/table.cpp.o.d"
  "librs_util.a"
  "librs_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rs_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
