# Empty dependencies file for rs_crypto.
# This may be replaced when dependencies are built.
