file(REMOVE_RECURSE
  "CMakeFiles/rs_crypto.dir/hmac.cpp.o"
  "CMakeFiles/rs_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/rs_crypto.dir/md5.cpp.o"
  "CMakeFiles/rs_crypto.dir/md5.cpp.o.d"
  "CMakeFiles/rs_crypto.dir/prng.cpp.o"
  "CMakeFiles/rs_crypto.dir/prng.cpp.o.d"
  "CMakeFiles/rs_crypto.dir/sha1.cpp.o"
  "CMakeFiles/rs_crypto.dir/sha1.cpp.o.d"
  "CMakeFiles/rs_crypto.dir/sha256.cpp.o"
  "CMakeFiles/rs_crypto.dir/sha256.cpp.o.d"
  "librs_crypto.a"
  "librs_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rs_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
