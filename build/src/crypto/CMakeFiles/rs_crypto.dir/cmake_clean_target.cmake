file(REMOVE_RECURSE
  "librs_crypto.a"
)
