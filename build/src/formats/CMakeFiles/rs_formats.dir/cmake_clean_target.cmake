file(REMOVE_RECURSE
  "librs_formats.a"
)
