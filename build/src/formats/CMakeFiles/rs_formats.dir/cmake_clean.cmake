file(REMOVE_RECURSE
  "CMakeFiles/rs_formats.dir/authroot_stl.cpp.o"
  "CMakeFiles/rs_formats.dir/authroot_stl.cpp.o.d"
  "CMakeFiles/rs_formats.dir/cert_dir.cpp.o"
  "CMakeFiles/rs_formats.dir/cert_dir.cpp.o.d"
  "CMakeFiles/rs_formats.dir/certdata.cpp.o"
  "CMakeFiles/rs_formats.dir/certdata.cpp.o.d"
  "CMakeFiles/rs_formats.dir/dataset_io.cpp.o"
  "CMakeFiles/rs_formats.dir/dataset_io.cpp.o.d"
  "CMakeFiles/rs_formats.dir/jks.cpp.o"
  "CMakeFiles/rs_formats.dir/jks.cpp.o.d"
  "CMakeFiles/rs_formats.dir/pem_bundle.cpp.o"
  "CMakeFiles/rs_formats.dir/pem_bundle.cpp.o.d"
  "CMakeFiles/rs_formats.dir/portable.cpp.o"
  "CMakeFiles/rs_formats.dir/portable.cpp.o.d"
  "CMakeFiles/rs_formats.dir/signed_envelope.cpp.o"
  "CMakeFiles/rs_formats.dir/signed_envelope.cpp.o.d"
  "CMakeFiles/rs_formats.dir/sniff.cpp.o"
  "CMakeFiles/rs_formats.dir/sniff.cpp.o.d"
  "librs_formats.a"
  "librs_formats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rs_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
