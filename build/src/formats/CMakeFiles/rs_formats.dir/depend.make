# Empty dependencies file for rs_formats.
# This may be replaced when dependencies are built.
