
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/formats/authroot_stl.cpp" "src/formats/CMakeFiles/rs_formats.dir/authroot_stl.cpp.o" "gcc" "src/formats/CMakeFiles/rs_formats.dir/authroot_stl.cpp.o.d"
  "/root/repo/src/formats/cert_dir.cpp" "src/formats/CMakeFiles/rs_formats.dir/cert_dir.cpp.o" "gcc" "src/formats/CMakeFiles/rs_formats.dir/cert_dir.cpp.o.d"
  "/root/repo/src/formats/certdata.cpp" "src/formats/CMakeFiles/rs_formats.dir/certdata.cpp.o" "gcc" "src/formats/CMakeFiles/rs_formats.dir/certdata.cpp.o.d"
  "/root/repo/src/formats/dataset_io.cpp" "src/formats/CMakeFiles/rs_formats.dir/dataset_io.cpp.o" "gcc" "src/formats/CMakeFiles/rs_formats.dir/dataset_io.cpp.o.d"
  "/root/repo/src/formats/jks.cpp" "src/formats/CMakeFiles/rs_formats.dir/jks.cpp.o" "gcc" "src/formats/CMakeFiles/rs_formats.dir/jks.cpp.o.d"
  "/root/repo/src/formats/pem_bundle.cpp" "src/formats/CMakeFiles/rs_formats.dir/pem_bundle.cpp.o" "gcc" "src/formats/CMakeFiles/rs_formats.dir/pem_bundle.cpp.o.d"
  "/root/repo/src/formats/portable.cpp" "src/formats/CMakeFiles/rs_formats.dir/portable.cpp.o" "gcc" "src/formats/CMakeFiles/rs_formats.dir/portable.cpp.o.d"
  "/root/repo/src/formats/signed_envelope.cpp" "src/formats/CMakeFiles/rs_formats.dir/signed_envelope.cpp.o" "gcc" "src/formats/CMakeFiles/rs_formats.dir/signed_envelope.cpp.o.d"
  "/root/repo/src/formats/sniff.cpp" "src/formats/CMakeFiles/rs_formats.dir/sniff.cpp.o" "gcc" "src/formats/CMakeFiles/rs_formats.dir/sniff.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/store/CMakeFiles/rs_store.dir/DependInfo.cmake"
  "/root/repo/build/src/x509/CMakeFiles/rs_x509.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/rs_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/rs_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/asn1/CMakeFiles/rs_asn1.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
