
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/x509/builder.cpp" "src/x509/CMakeFiles/rs_x509.dir/builder.cpp.o" "gcc" "src/x509/CMakeFiles/rs_x509.dir/builder.cpp.o.d"
  "/root/repo/src/x509/certificate.cpp" "src/x509/CMakeFiles/rs_x509.dir/certificate.cpp.o" "gcc" "src/x509/CMakeFiles/rs_x509.dir/certificate.cpp.o.d"
  "/root/repo/src/x509/extensions.cpp" "src/x509/CMakeFiles/rs_x509.dir/extensions.cpp.o" "gcc" "src/x509/CMakeFiles/rs_x509.dir/extensions.cpp.o.d"
  "/root/repo/src/x509/lint.cpp" "src/x509/CMakeFiles/rs_x509.dir/lint.cpp.o" "gcc" "src/x509/CMakeFiles/rs_x509.dir/lint.cpp.o.d"
  "/root/repo/src/x509/name.cpp" "src/x509/CMakeFiles/rs_x509.dir/name.cpp.o" "gcc" "src/x509/CMakeFiles/rs_x509.dir/name.cpp.o.d"
  "/root/repo/src/x509/public_key.cpp" "src/x509/CMakeFiles/rs_x509.dir/public_key.cpp.o" "gcc" "src/x509/CMakeFiles/rs_x509.dir/public_key.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/asn1/CMakeFiles/rs_asn1.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/rs_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
