file(REMOVE_RECURSE
  "CMakeFiles/rs_x509.dir/builder.cpp.o"
  "CMakeFiles/rs_x509.dir/builder.cpp.o.d"
  "CMakeFiles/rs_x509.dir/certificate.cpp.o"
  "CMakeFiles/rs_x509.dir/certificate.cpp.o.d"
  "CMakeFiles/rs_x509.dir/extensions.cpp.o"
  "CMakeFiles/rs_x509.dir/extensions.cpp.o.d"
  "CMakeFiles/rs_x509.dir/lint.cpp.o"
  "CMakeFiles/rs_x509.dir/lint.cpp.o.d"
  "CMakeFiles/rs_x509.dir/name.cpp.o"
  "CMakeFiles/rs_x509.dir/name.cpp.o.d"
  "CMakeFiles/rs_x509.dir/public_key.cpp.o"
  "CMakeFiles/rs_x509.dir/public_key.cpp.o.d"
  "librs_x509.a"
  "librs_x509.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rs_x509.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
