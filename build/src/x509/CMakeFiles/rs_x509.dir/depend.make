# Empty dependencies file for rs_x509.
# This may be replaced when dependencies are built.
