file(REMOVE_RECURSE
  "librs_x509.a"
)
