file(REMOVE_RECURSE
  "CMakeFiles/rs_core.dir/export.cpp.o"
  "CMakeFiles/rs_core.dir/export.cpp.o.d"
  "CMakeFiles/rs_core.dir/study.cpp.o"
  "CMakeFiles/rs_core.dir/study.cpp.o.d"
  "librs_core.a"
  "librs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
