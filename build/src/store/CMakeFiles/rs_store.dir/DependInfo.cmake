
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/store/database.cpp" "src/store/CMakeFiles/rs_store.dir/database.cpp.o" "gcc" "src/store/CMakeFiles/rs_store.dir/database.cpp.o.d"
  "/root/repo/src/store/fingerprint_set.cpp" "src/store/CMakeFiles/rs_store.dir/fingerprint_set.cpp.o" "gcc" "src/store/CMakeFiles/rs_store.dir/fingerprint_set.cpp.o.d"
  "/root/repo/src/store/overlay.cpp" "src/store/CMakeFiles/rs_store.dir/overlay.cpp.o" "gcc" "src/store/CMakeFiles/rs_store.dir/overlay.cpp.o.d"
  "/root/repo/src/store/snapshot.cpp" "src/store/CMakeFiles/rs_store.dir/snapshot.cpp.o" "gcc" "src/store/CMakeFiles/rs_store.dir/snapshot.cpp.o.d"
  "/root/repo/src/store/trust.cpp" "src/store/CMakeFiles/rs_store.dir/trust.cpp.o" "gcc" "src/store/CMakeFiles/rs_store.dir/trust.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/x509/CMakeFiles/rs_x509.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/asn1/CMakeFiles/rs_asn1.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/rs_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
