file(REMOVE_RECURSE
  "librs_store.a"
)
