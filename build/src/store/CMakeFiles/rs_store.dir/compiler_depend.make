# Empty compiler generated dependencies file for rs_store.
# This may be replaced when dependencies are built.
