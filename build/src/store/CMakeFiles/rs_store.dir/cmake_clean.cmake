file(REMOVE_RECURSE
  "CMakeFiles/rs_store.dir/database.cpp.o"
  "CMakeFiles/rs_store.dir/database.cpp.o.d"
  "CMakeFiles/rs_store.dir/fingerprint_set.cpp.o"
  "CMakeFiles/rs_store.dir/fingerprint_set.cpp.o.d"
  "CMakeFiles/rs_store.dir/overlay.cpp.o"
  "CMakeFiles/rs_store.dir/overlay.cpp.o.d"
  "CMakeFiles/rs_store.dir/snapshot.cpp.o"
  "CMakeFiles/rs_store.dir/snapshot.cpp.o.d"
  "CMakeFiles/rs_store.dir/trust.cpp.o"
  "CMakeFiles/rs_store.dir/trust.cpp.o.d"
  "librs_store.a"
  "librs_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rs_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
