file(REMOVE_RECURSE
  "CMakeFiles/rs_analysis.dir/attribution.cpp.o"
  "CMakeFiles/rs_analysis.dir/attribution.cpp.o.d"
  "CMakeFiles/rs_analysis.dir/cadence.cpp.o"
  "CMakeFiles/rs_analysis.dir/cadence.cpp.o.d"
  "CMakeFiles/rs_analysis.dir/churn.cpp.o"
  "CMakeFiles/rs_analysis.dir/churn.cpp.o.d"
  "CMakeFiles/rs_analysis.dir/cluster.cpp.o"
  "CMakeFiles/rs_analysis.dir/cluster.cpp.o.d"
  "CMakeFiles/rs_analysis.dir/diffs.cpp.o"
  "CMakeFiles/rs_analysis.dir/diffs.cpp.o.d"
  "CMakeFiles/rs_analysis.dir/exclusive.cpp.o"
  "CMakeFiles/rs_analysis.dir/exclusive.cpp.o.d"
  "CMakeFiles/rs_analysis.dir/hygiene.cpp.o"
  "CMakeFiles/rs_analysis.dir/hygiene.cpp.o.d"
  "CMakeFiles/rs_analysis.dir/incident_response.cpp.o"
  "CMakeFiles/rs_analysis.dir/incident_response.cpp.o.d"
  "CMakeFiles/rs_analysis.dir/jaccard.cpp.o"
  "CMakeFiles/rs_analysis.dir/jaccard.cpp.o.d"
  "CMakeFiles/rs_analysis.dir/mds.cpp.o"
  "CMakeFiles/rs_analysis.dir/mds.cpp.o.d"
  "CMakeFiles/rs_analysis.dir/operators.cpp.o"
  "CMakeFiles/rs_analysis.dir/operators.cpp.o.d"
  "CMakeFiles/rs_analysis.dir/removals.cpp.o"
  "CMakeFiles/rs_analysis.dir/removals.cpp.o.d"
  "CMakeFiles/rs_analysis.dir/staleness.cpp.o"
  "CMakeFiles/rs_analysis.dir/staleness.cpp.o.d"
  "librs_analysis.a"
  "librs_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rs_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
