
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/attribution.cpp" "src/analysis/CMakeFiles/rs_analysis.dir/attribution.cpp.o" "gcc" "src/analysis/CMakeFiles/rs_analysis.dir/attribution.cpp.o.d"
  "/root/repo/src/analysis/cadence.cpp" "src/analysis/CMakeFiles/rs_analysis.dir/cadence.cpp.o" "gcc" "src/analysis/CMakeFiles/rs_analysis.dir/cadence.cpp.o.d"
  "/root/repo/src/analysis/churn.cpp" "src/analysis/CMakeFiles/rs_analysis.dir/churn.cpp.o" "gcc" "src/analysis/CMakeFiles/rs_analysis.dir/churn.cpp.o.d"
  "/root/repo/src/analysis/cluster.cpp" "src/analysis/CMakeFiles/rs_analysis.dir/cluster.cpp.o" "gcc" "src/analysis/CMakeFiles/rs_analysis.dir/cluster.cpp.o.d"
  "/root/repo/src/analysis/diffs.cpp" "src/analysis/CMakeFiles/rs_analysis.dir/diffs.cpp.o" "gcc" "src/analysis/CMakeFiles/rs_analysis.dir/diffs.cpp.o.d"
  "/root/repo/src/analysis/exclusive.cpp" "src/analysis/CMakeFiles/rs_analysis.dir/exclusive.cpp.o" "gcc" "src/analysis/CMakeFiles/rs_analysis.dir/exclusive.cpp.o.d"
  "/root/repo/src/analysis/hygiene.cpp" "src/analysis/CMakeFiles/rs_analysis.dir/hygiene.cpp.o" "gcc" "src/analysis/CMakeFiles/rs_analysis.dir/hygiene.cpp.o.d"
  "/root/repo/src/analysis/incident_response.cpp" "src/analysis/CMakeFiles/rs_analysis.dir/incident_response.cpp.o" "gcc" "src/analysis/CMakeFiles/rs_analysis.dir/incident_response.cpp.o.d"
  "/root/repo/src/analysis/jaccard.cpp" "src/analysis/CMakeFiles/rs_analysis.dir/jaccard.cpp.o" "gcc" "src/analysis/CMakeFiles/rs_analysis.dir/jaccard.cpp.o.d"
  "/root/repo/src/analysis/mds.cpp" "src/analysis/CMakeFiles/rs_analysis.dir/mds.cpp.o" "gcc" "src/analysis/CMakeFiles/rs_analysis.dir/mds.cpp.o.d"
  "/root/repo/src/analysis/operators.cpp" "src/analysis/CMakeFiles/rs_analysis.dir/operators.cpp.o" "gcc" "src/analysis/CMakeFiles/rs_analysis.dir/operators.cpp.o.d"
  "/root/repo/src/analysis/removals.cpp" "src/analysis/CMakeFiles/rs_analysis.dir/removals.cpp.o" "gcc" "src/analysis/CMakeFiles/rs_analysis.dir/removals.cpp.o.d"
  "/root/repo/src/analysis/staleness.cpp" "src/analysis/CMakeFiles/rs_analysis.dir/staleness.cpp.o" "gcc" "src/analysis/CMakeFiles/rs_analysis.dir/staleness.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/store/CMakeFiles/rs_store.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/rs_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/formats/CMakeFiles/rs_formats.dir/DependInfo.cmake"
  "/root/repo/build/src/x509/CMakeFiles/rs_x509.dir/DependInfo.cmake"
  "/root/repo/build/src/asn1/CMakeFiles/rs_asn1.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/rs_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/rs_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
