
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/encoding/base64.cpp" "src/encoding/CMakeFiles/rs_encoding.dir/base64.cpp.o" "gcc" "src/encoding/CMakeFiles/rs_encoding.dir/base64.cpp.o.d"
  "/root/repo/src/encoding/pem.cpp" "src/encoding/CMakeFiles/rs_encoding.dir/pem.cpp.o" "gcc" "src/encoding/CMakeFiles/rs_encoding.dir/pem.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
