file(REMOVE_RECURSE
  "librs_encoding.a"
)
