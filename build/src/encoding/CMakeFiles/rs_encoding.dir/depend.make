# Empty dependencies file for rs_encoding.
# This may be replaced when dependencies are built.
