file(REMOVE_RECURSE
  "CMakeFiles/rs_encoding.dir/base64.cpp.o"
  "CMakeFiles/rs_encoding.dir/base64.cpp.o.d"
  "CMakeFiles/rs_encoding.dir/pem.cpp.o"
  "CMakeFiles/rs_encoding.dir/pem.cpp.o.d"
  "librs_encoding.a"
  "librs_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rs_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
