// Fuzz target: rs::formats::parse_authroot, the Microsoft authroot.stl
// certificate-trust-list reader.
//
// The input is treated as the raw STL blob; the certificate cache is empty,
// so structurally valid lists degrade to per-entry warnings.  Every entry
// that does come back must carry a certificate and only purposes the format
// can express.
#include <span>

#include "fuzz/fuzz_harness.h"
#include "src/formats/authroot_stl.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  auto parsed =
      rs::formats::parse_authroot(std::span(data, size), {});
  if (!parsed.ok()) return 0;
  // With an empty cert cache nothing can be resolved to an entry; anything
  // else means the parser fabricated a certificate out of hostile bytes.
  RS_FUZZ_ASSERT(parsed.value().entries.empty(),
                 "parse_authroot invented entries without a cert cache");
  return 0;
}
