// Fuzz target: rs::formats::parse_jks, the Java KeyStore v2 reader.
//
// Two passes per input:
//   1. raw: the bytes as-is — exercises the size floor and the integrity
//      digest comparison (virtually all mutated inputs stop here);
//   2. re-signed: the bytes are treated as a store BODY and a valid SHA-1
//      integrity digest is appended, so the length-prefixed framing parser
//      runs on arbitrary data.  This is the path that finds real bugs.
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "fuzz/fuzz_harness.h"
#include "src/crypto/sha1.h"
#include "src/formats/jks.h"

namespace {

// Mirrors the JKS integrity scheme: SHA1(password-UTF-16BE || whitener ||
// body).  Kept in sync with src/formats/jks.cpp by the jks corpus replay.
std::vector<std::uint8_t> sign_body(std::span<const std::uint8_t> body) {
  rs::crypto::Sha1 h;
  for (char c : rs::formats::kDefaultJksPassword) {
    const std::uint8_t pair[2] = {0, static_cast<std::uint8_t>(c)};
    h.update(pair);
  }
  constexpr std::string_view kWhitener = "Mighty Aphrodite";
  h.update({reinterpret_cast<const std::uint8_t*>(kWhitener.data()),
            kWhitener.size()});
  h.update(body);
  std::vector<std::uint8_t> out(body.begin(), body.end());
  const auto digest = h.finish();
  out.insert(out.end(), digest.begin(), digest.end());
  return out;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  (void)rs::formats::parse_jks(std::span(data, size));

  const auto signed_blob = sign_body(std::span(data, size));
  auto parsed = rs::formats::parse_jks(signed_blob);
  if (!parsed.ok()) return 0;
  for (const auto& e : parsed.value().entries) {
    RS_FUZZ_ASSERT(e.certificate != nullptr,
                   "parse_jks produced an entry without a certificate");
  }
  return 0;
}
