// Fuzz target: rs::encoding::base64_decode, which sits under every PEM body
// the pipeline ingests.
//
// Decodes in both strict and whitespace-tolerant modes; when a decode
// succeeds, re-encoding must reproduce the compacted input exactly (the
// decoder rejects non-canonical encodings, so decode ∘ encode is identity).
#include <cctype>
#include <string>
#include <string_view>

#include "fuzz/fuzz_harness.h"
#include "src/encoding/base64.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);

  (void)rs::encoding::base64_decode(text, {.allow_whitespace = false});
  const auto tolerant =
      rs::encoding::base64_decode(text, {.allow_whitespace = true});
  if (!tolerant) return 0;

  std::string compact;
  for (char c : text) {
    if (!std::isspace(static_cast<unsigned char>(c))) compact.push_back(c);
  }
  const std::string reencoded = rs::encoding::base64_encode(*tolerant);
  RS_FUZZ_ASSERT(reencoded == compact,
                 "decode/encode roundtrip changed the text");
  return 0;
}
