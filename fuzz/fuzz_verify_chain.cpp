// Fuzz target: the chain-verification slice behind the verify_chain /
// first_rejected_at serve ops — rs::query::parse_request on the NDJSON
// line, Certificate::parse on the embedded DER, and
// rs::verify::verify_chain over a deterministic synthetic oracle.
//
// Invariants checked on every input that reaches verify_chain:
//   * caps are hard: candidate count, per-path depth, and fail_index
//     ranges never exceed their bounds,
//   * acceptance is coherent: accepted <=> reason kAccepted <=> the last
//     recorded candidate is the accepted path, and its terminal
//     certificate is present per the oracle,
//   * the verdict is a pure function: re-running yields identical results,
//     and reversing the pool changes nothing (candidate ranking is
//     pool-order independent — the cache-key canonicalization in
//     request.cpp depends on exactly this).
// Raw DER that is not a request line is driven through Certificate::parse
// and a poolless verify_chain (the parser must never crash on it).
#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "fuzz/fuzz_harness.h"
#include "src/asn1/oid.h"
#include "src/query/request.h"
#include "src/util/date.h"
#include "src/verify/verify.h"
#include "src/x509/certificate.h"

namespace {

using rs::verify::OracleAnswer;
using rs::verify::VerifyCaps;
using rs::verify::VerifyResult;
using rs::x509::Certificate;

/// Fingerprint-keyed synthetic store: deterministic, covers all three
/// answers, and anchors are a strict subset of present certificates.
rs::verify::TrustOracle synthetic_oracle() {
  rs::verify::TrustOracle oracle;
  oracle.present = [](const rs::crypto::Sha256Digest& fp, rs::util::Date) {
    switch (fp[0] % 4) {
      case 0: return OracleAnswer::kNo;
      case 1: return OracleAnswer::kNotCovered;
      default: return OracleAnswer::kYes;
    }
  };
  oracle.anchor = [](const rs::crypto::Sha256Digest& fp, rs::util::Date) {
    if (fp[0] % 4 < 2) return OracleAnswer::kNo;  // never beyond `present`
    return fp[1] % 2 == 0 ? OracleAnswer::kYes : OracleAnswer::kNo;
  };
  return oracle;
}

/// Flattens a result for equality comparison: verdict, reason, and every
/// candidate's status/fail_index/certificate fingerprints.
std::string render(const VerifyResult& result) {
  std::string out = result.accepted ? "A:" : "R:";
  out += rs::verify::to_string(result.reason);
  for (const auto& c : result.candidates) {
    out += '|';
    out += rs::verify::to_string(c.status);
    out += ':';
    out += std::to_string(c.fail_index);
    for (const Certificate* cert : c.certs) {
      const auto& fp = cert->sha256();
      out.append(reinterpret_cast<const char*>(fp.data()), fp.size());
    }
  }
  return out;
}

void check_verify(const Certificate& leaf,
                  std::vector<const Certificate*> pool, rs::util::Date date,
                  const std::optional<rs::asn1::Oid>& eku,
                  const VerifyCaps& caps) {
  const auto oracle = synthetic_oracle();
  const VerifyResult result = rs::verify::verify_chain(
      leaf, pool, date, oracle, eku, caps);

  RS_FUZZ_ASSERT(result.candidates.size() <= caps.max_candidates,
                 "candidate count exceeds caps.max_candidates");
  for (const auto& c : result.candidates) {
    RS_FUZZ_ASSERT(!c.certs.empty(), "recorded candidate with empty path");
    RS_FUZZ_ASSERT(c.certs.size() <= caps.max_depth,
                   "candidate path exceeds caps.max_depth");
    RS_FUZZ_ASSERT(c.fail_index < c.certs.size(),
                   "fail_index outside the candidate path");
    RS_FUZZ_ASSERT(c.certs.front() == &leaf,
                   "candidate path does not start at the leaf");
  }
  if (result.accepted) {
    RS_FUZZ_ASSERT(result.reason == rs::verify::PathStatus::kAccepted,
                   "accepted verdict with a rejection reason");
    RS_FUZZ_ASSERT(result.accepted_index == result.candidates.size() - 1,
                   "accepted path is not the final candidate");
    const auto* path = result.accepted_path();
    RS_FUZZ_ASSERT(path != nullptr &&
                       path->status == rs::verify::PathStatus::kAccepted,
                   "accepted_path() does not carry kAccepted");
    RS_FUZZ_ASSERT(oracle.present(path->certs.back()->sha256(), date) ==
                       OracleAnswer::kYes,
                   "accepted path terminates outside the store");
  } else {
    RS_FUZZ_ASSERT(result.accepted_index == VerifyResult::kNone,
                   "rejected verdict with an accepted index");
    for (const auto& c : result.candidates) {
      RS_FUZZ_ASSERT(c.status != rs::verify::PathStatus::kAccepted,
                     "rejected verdict but a candidate was accepted");
    }
  }

  // Pure function: identical call, identical result.
  const std::string first = render(result);
  RS_FUZZ_ASSERT(
      render(rs::verify::verify_chain(leaf, pool, date, oracle, eku, caps)) ==
          first,
      "verify_chain is not deterministic");
  // Candidate ranking orders parents by AKI/SKI then fingerprint, so pool
  // order must not change anything — verdict, reason, or candidate order.
  std::reverse(pool.begin(), pool.end());
  RS_FUZZ_ASSERT(
      render(rs::verify::verify_chain(leaf, pool, date, oracle, eku, caps)) ==
          first,
      "verify result depends on pool order");
}

void drive_request(const rs::query::Request& request, std::size_t size) {
  if (request.op != rs::query::Op::kVerifyChain &&
      request.op != rs::query::Op::kFirstRejectedAt) {
    return;
  }
  auto leaf = Certificate::parse(*request.leaf);
  if (!leaf.ok()) return;
  std::vector<Certificate> owned;
  owned.reserve(request.pool.size());
  for (const auto& der : request.pool) {
    auto cert = Certificate::parse(der);
    if (cert.ok()) owned.push_back(std::move(cert).value());
  }
  std::vector<const Certificate*> pool;
  for (const auto& cert : owned) pool.push_back(&cert);

  const rs::util::Date date =
      request.date.value_or(rs::util::Date::ymd(2015, 6, 1));
  // Input-derived caps exercise the truncation paths; the defaults are
  // covered because small inputs map onto them too.
  VerifyCaps caps;
  caps.max_depth = 1 + size % 9;
  caps.max_candidates = 1 + size % 33;
  caps.max_steps = 16 + size % 512;
  std::optional<rs::asn1::Oid> eku;
  if (request.scope == rs::query::Scope::kTls) {
    eku = rs::asn1::oids::eku_server_auth();
  } else if (request.scope == rs::query::Scope::kEmail) {
    eku = rs::asn1::oids::eku_email_protection();
  }
  check_verify(leaf.value(), std::move(pool), date, eku, caps);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view line(reinterpret_cast<const char*>(data), size);
  auto parsed = rs::query::parse_request(line);
  if (parsed.ok()) {
    drive_request(parsed.value(), size);
    return 0;
  }
  // Not a request line: treat the bytes as one DER certificate and verify
  // it poolless (certificate parsing is the other untrusted surface here).
  auto cert = Certificate::parse(std::span(data, size));
  if (cert.ok()) {
    check_verify(cert.value(), {}, rs::util::Date::ymd(2015, 6, 1),
                 std::nullopt, VerifyCaps{});
  }
  return 0;
}
