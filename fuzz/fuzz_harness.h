// Shared declarations for the libFuzzer-style harnesses.
//
// Each harness defines LLVMFuzzerTestOneInput (the fixed libFuzzer entry
// ABI).  Under clang with -fsanitize=fuzzer the symbol is driven by
// libFuzzer's mutation loop; otherwise fuzz/standalone_driver.cpp supplies a
// main() that replays corpus files through it, which is how the ctest
// regression runs on any toolchain.
//
// Harness contract: never crash, never leak, never read out of bounds for
// ANY byte string.  Logic errors are promoted to aborts with RS_FUZZ_ASSERT
// so sanitizers and the replay driver both fail loudly.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstddef>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

#define RS_FUZZ_ASSERT(cond, what)                                       \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "fuzz invariant violated: %s (%s:%d)\n", what, \
                   __FILE__, __LINE__);                                  \
      std::abort();                                                      \
    }                                                                    \
  } while (0)
