// Fuzz target: rs::formats::parse_certdata, the NSS certdata.txt reader
// (the upstream source of Mozilla-derived root stores, Table 2).
//
// Parses arbitrary text.  A successful parse must yield entries that all
// carry a certificate, and re-serializing them must produce text the parser
// accepts again with the same entry count (writer/reader agreement).
#include <string_view>

#include "fuzz/fuzz_harness.h"
#include "src/formats/certdata.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  auto parsed = rs::formats::parse_certdata(text);
  if (!parsed.ok()) return 0;

  for (const auto& e : parsed.value().entries) {
    RS_FUZZ_ASSERT(e.certificate != nullptr,
                   "parse_certdata produced an entry without a certificate");
  }
  const std::string round =
      rs::formats::write_certdata(parsed.value().entries);
  auto again = rs::formats::parse_certdata(round);
  RS_FUZZ_ASSERT(again.ok(), "write_certdata output rejected by parser");
  RS_FUZZ_ASSERT(
      again.value().entries.size() == parsed.value().entries.size(),
      "certdata roundtrip changed the entry count");
  return 0;
}
