// Regenerates the checked-in fuzz corpus under fuzz/corpus/.
//
//   make_corpus <output-dir>
//
// Seeds are deterministic (fixed key seeds, fixed dates) so regeneration is
// reproducible; each format gets well-formed stores produced by the
// project's own writers plus hand-crafted malformed inputs covering the
// error paths the harnesses must survive: truncation, oversized length
// prefixes, bad magic/version, non-canonical encodings, deep nesting.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/crypto/sha1.h"
#include "src/formats/authroot_stl.h"
#include "src/formats/certdata.h"
#include "src/formats/jks.h"
#include "src/formats/pem_bundle.h"
#include "src/query/index_io.h"
#include "src/query/request.h"
#include "src/query/trust_index.h"
#include "src/synth/chain_gen.h"
#include "src/store/database.h"
#include "src/store/interner.h"
#include "src/store/persist.h"
#include "src/store/snapshot.h"
#include "src/store/trust.h"
#include "src/util/date.h"
#include "src/x509/builder.h"

namespace {

namespace fs = std::filesystem;
using Bytes = std::vector<std::uint8_t>;

std::vector<rs::store::TrustEntry> sample_entries(int n) {
  std::vector<rs::store::TrustEntry> out;
  for (int i = 0; i < n; ++i) {
    rs::x509::Name name;
    name.add_common_name("Corpus Root " + std::to_string(i));
    out.push_back(rs::store::make_tls_anchor(
        std::make_shared<const rs::x509::Certificate>(
            rs::x509::CertificateBuilder()
                .subject(name)
                .key_seed(static_cast<std::uint64_t>(7000 + i))
                .build())));
  }
  return out;
}

void write_seed(const fs::path& dir, const std::string& name,
                std::span<const std::uint8_t> bytes) {
  fs::create_directories(dir);
  std::ofstream out(dir / name, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

void write_seed(const fs::path& dir, const std::string& name,
                std::string_view text) {
  write_seed(dir, name,
             std::span(reinterpret_cast<const std::uint8_t*>(text.data()),
                       text.size()));
}

Bytes nested_sequences(std::size_t levels) {
  Bytes der;
  for (std::size_t i = 0; i < levels; ++i) {
    Bytes wrapped = {0x30};
    if (der.size() < 0x80) {
      wrapped.push_back(static_cast<std::uint8_t>(der.size()));
    } else if (der.size() <= 0xFF) {
      wrapped.push_back(0x81);
      wrapped.push_back(static_cast<std::uint8_t>(der.size()));
    } else {
      wrapped.push_back(0x82);
      wrapped.push_back(static_cast<std::uint8_t>(der.size() >> 8));
      wrapped.push_back(static_cast<std::uint8_t>(der.size() & 0xFF));
    }
    wrapped.insert(wrapped.end(), der.begin(), der.end());
    der = std::move(wrapped);
  }
  return der;
}

// Appends a valid JKS integrity digest so the seed reaches the framing
// parser (same scheme as fuzz_jks.cpp's re-sign pass).
Bytes sign_jks(Bytes body) {
  rs::crypto::Sha1 h;
  for (char c : rs::formats::kDefaultJksPassword) {
    const std::uint8_t pair[2] = {0, static_cast<std::uint8_t>(c)};
    h.update(pair);
  }
  constexpr std::string_view kWhitener = "Mighty Aphrodite";
  h.update({reinterpret_cast<const std::uint8_t*>(kWhitener.data()),
            kWhitener.size()});
  h.update(body);
  const auto digest = h.finish();
  body.insert(body.end(), digest.begin(), digest.end());
  return body;
}

void put_u32(Bytes& out, std::uint32_t v) {
  for (int s = 24; s >= 0; s -= 8) out.push_back(static_cast<std::uint8_t>(v >> s));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-dir>\n", argv[0]);
    return 2;
  }
  const fs::path root = argv[1];
  const auto entries = sample_entries(3);
  const auto one = sample_entries(1);

  // --- asn1: raw DER through the generic reader walk ---------------------
  {
    const fs::path dir = root / "asn1";
    write_seed(dir, "cert.der", one[0].certificate->der());
    write_seed(dir, "nested-8.der", nested_sequences(8));
    write_seed(dir, "nested-300.der", nested_sequences(300));
    const Bytes prims = {0x01, 0x01, 0xFF,              // BOOLEAN true
                         0x02, 0x01, 0x2A,              // INTEGER 42
                         0x06, 0x03, 0x55, 0x04, 0x03,  // OID 2.5.4.3
                         0x0C, 0x02, 'h', 'i',          // UTF8String
                         0x05, 0x00};                   // NULL
    write_seed(dir, "primitives.der", prims);
    write_seed(dir, "truncated-length.der", Bytes{0x30, 0x82, 0x01});
    write_seed(dir, "indefinite-length.der", Bytes{0x30, 0x80, 0x00, 0x00});
    write_seed(dir, "overlong-content.der", Bytes{0x04, 0x7F, 0x00});
  }

  // --- base64 ------------------------------------------------------------
  {
    const fs::path dir = root / "base64";
    write_seed(dir, "hello.txt", std::string_view("SGVsbG8gd29ybGQ="));
    write_seed(dir, "wrapped.txt",
               std::string_view("SGVs\nbG8g\nd29y\nbGQh\n"));
    write_seed(dir, "empty.txt", std::string_view(""));
    write_seed(dir, "bad-char.txt", std::string_view("SGVs*G8="));
    write_seed(dir, "bad-length.txt", std::string_view("SGVsbG8"));
    write_seed(dir, "misplaced-pad.txt", std::string_view("SG=sbG8="));
    write_seed(dir, "noncanonical.txt", std::string_view("SGVsbG9="));
  }

  // --- pem ---------------------------------------------------------------
  {
    const fs::path dir = root / "pem";
    write_seed(dir, "bundle.pem", rs::formats::write_pem_bundle(entries));
    write_seed(dir, "prose-between-blocks.pem",
               "subject=CN=Example\n" +
                   rs::formats::write_pem_bundle(one) + "trailing prose\n");
    write_seed(dir, "unterminated.pem",
               std::string_view("-----BEGIN CERTIFICATE-----\nAAAA\n"));
    write_seed(dir, "mismatched-end.pem",
               std::string_view("-----BEGIN CERTIFICATE-----\nAAAA\n"
                                "-----END TRUST-----\n"));
    write_seed(dir, "bad-base64.pem",
               std::string_view("-----BEGIN CERTIFICATE-----\n!!!!\n"
                                "-----END CERTIFICATE-----\n"));
    write_seed(dir, "empty-label.pem",
               std::string_view("-----BEGIN -----\n-----END -----\n"));
  }

  // --- certdata ----------------------------------------------------------
  {
    const fs::path dir = root / "certdata";
    const std::string full = rs::formats::write_certdata(entries);
    write_seed(dir, "store.txt", full);
    write_seed(dir, "truncated.txt",
               std::string_view(full).substr(0, full.size() / 2));
    write_seed(dir, "missing-begindata.txt",
               std::string_view("CKA_CLASS CK_OBJECT_CLASS CKO_CERTIFICATE\n"));
    write_seed(dir, "bad-octal.txt",
               std::string_view("BEGINDATA\n"
                                "CKA_CLASS CK_OBJECT_CLASS CKO_CERTIFICATE\n"
                                "CKA_VALUE MULTILINE_OCTAL\n\\999\nEND\n"));
    write_seed(dir, "unterminated-octal.txt",
               std::string_view("BEGINDATA\n"
                                "CKA_CLASS CK_OBJECT_CLASS CKO_CERTIFICATE\n"
                                "CKA_VALUE MULTILINE_OCTAL\n\\101\\102"));
    write_seed(dir, "unknown-trust-level.txt",
               std::string_view("BEGINDATA\n"
                                "CKA_CLASS CK_OBJECT_CLASS CKO_NSS_TRUST\n"
                                "CKA_TRUST_SERVER_AUTH CK_TRUST CKT_BOGUS\n"));
  }

  // --- authroot ----------------------------------------------------------
  {
    const fs::path dir = root / "authroot";
    const auto blob = rs::formats::write_authroot(entries);
    write_seed(dir, "store.stl", blob.stl);
    write_seed(dir, "truncated.stl",
               std::span(blob.stl).first(blob.stl.size() / 2));
    write_seed(dir, "wrong-version.stl",
               Bytes{0x30, 0x03, 0x02, 0x01, 0x07});
    const Bytes short_sha1 = {0x30, 0x0D, 0x02, 0x01, 0x01, 0x30, 0x08,
                              0x30, 0x06, 0x04, 0x02, 0xAB, 0xCD, 0x30,
                              0x00};
    write_seed(dir, "short-subject-id.stl", short_sha1);
    write_seed(dir, "nested-300.stl", nested_sequences(300));
  }

  // --- jks ---------------------------------------------------------------
  {
    const fs::path dir = root / "jks";
    const auto store = rs::formats::write_jks(
        entries, rs::util::Date::ymd(2021, 1, 1));
    write_seed(dir, "store.jks", store);
    write_seed(dir, "truncated.jks", std::span(store).first(store.size() / 3));
    Bytes bad_magic;
    put_u32(bad_magic, 0xDEADBEEFu);
    put_u32(bad_magic, 2);
    put_u32(bad_magic, 0);
    write_seed(dir, "bad-magic.jks", sign_jks(std::move(bad_magic)));
    Bytes overflow_count;
    put_u32(overflow_count, 0xFEEDFEEDu);
    put_u32(overflow_count, 2);
    put_u32(overflow_count, 0xFFFFFFFFu);
    write_seed(dir, "count-overflow.jks", sign_jks(std::move(overflow_count)));
    Bytes alias_overflow;
    put_u32(alias_overflow, 0xFEEDFEEDu);
    put_u32(alias_overflow, 2);
    put_u32(alias_overflow, 1);
    put_u32(alias_overflow, 2);          // trusted-cert tag
    alias_overflow.push_back(0xFF);      // alias length 0xFFFF...
    alias_overflow.push_back(0xFF);      // ...with 1 byte remaining
    alias_overflow.push_back('a');
    write_seed(dir, "alias-overflow.jks", sign_jks(std::move(alias_overflow)));
    write_seed(dir, "empty.jks", Bytes{});
  }

  // --- persist_load: RSIX trust-index images -----------------------------
  {
    const fs::path dir = root / "persist_load";
    // A minimal but fully populated index: one provider, two snapshots,
    // three roots, one dropped at the second date so the interval section
    // carries both closed and still-open runs.
    rs::store::Snapshot first_snap;
    first_snap.provider = "CorpusStore";
    first_snap.date = rs::util::Date::ymd(2020, 1, 1);
    first_snap.version = "1";
    first_snap.entries = sample_entries(3);
    rs::store::Snapshot second_snap = first_snap;
    second_snap.date = rs::util::Date::ymd(2020, 7, 1);
    second_snap.version = "2";
    second_snap.entries.pop_back();
    rs::store::ProviderHistory history("CorpusStore");
    history.add(first_snap);
    history.add(second_snap);
    rs::store::StoreDatabase db;
    db.add(std::move(history));
    const auto index = rs::query::TrustIndex::build(
        db, rs::store::CertInterner::from_database(db));
    const std::string image = rs::query::TrustIndexIO::serialize(index);
    write_seed(dir, "minimal.rsix", std::string_view(image));
    write_seed(dir, "empty-index.rsix",
               std::string_view(
                   rs::query::TrustIndexIO::serialize(rs::query::TrustIndex())));

    // One truncation at the end of each of the four sections, plus a
    // mid-header cut — the boundaries the loader's sweep must reject.
    const auto span = std::span(
        reinterpret_cast<const std::uint8_t*>(image.data()), image.size());
    auto view = rs::store::persist::FileView::parse(span);
    for (const auto& sec : view.value().sections()) {
      const std::size_t end = static_cast<std::size_t>(
          sec.payload.data() - span.data()) + sec.payload.size();
      write_seed(dir,
                 "truncated-after-s" + std::to_string(sec.id) + ".rsix",
                 std::string_view(image).substr(0, end - 1));
    }
    write_seed(dir, "truncated-header.rsix",
               std::string_view(image).substr(0, 20));
    std::string skew = image;
    skew[8] = 0x7F;  // version u32 -> unknown
    write_seed(dir, "version-skew.rsix", std::string_view(skew));
    write_seed(dir, "not-an-index.rsix",
               std::string_view("RSIX01 but not really\n"));
  }

  // --- verify_chain: NDJSON verify requests over synthetic chains --------
  {
    const fs::path dir = root / "verify_chain";
    rs::x509::Name anchor_name;
    anchor_name.add_common_name("Corpus Verify Anchor");
    anchor_name.add_organization("rs_verify");
    rs::synth::ChainGenConfig cfg;
    cfg.anchor = std::make_shared<const rs::x509::Certificate>(
        rs::x509::CertificateBuilder()
            .subject(anchor_name)
            .key_seed(7100)
            .build());
    const auto cases = rs::synth::build_chain_cases(cfg);
    const auto& v = cfg.anchor->validity();
    const rs::util::Date mid =
        v.not_before.date + (v.not_after.date - v.not_before.date) / 2;

    auto request_for = [&](const rs::synth::ChainCase& c, rs::query::Op op,
                           std::optional<rs::util::Date> date,
                           rs::query::Scope scope) {
      rs::query::Request r;
      r.op = op;
      r.provider = "CorpusStore";
      r.date = date;
      r.scope = scope;
      r.leaf = c.leaf->der();
      for (const auto& cert : c.pool) r.pool.push_back(cert->der());
      std::sort(r.pool.begin(), r.pool.end());
      r.pool.erase(std::unique(r.pool.begin(), r.pool.end()), r.pool.end());
      return rs::query::canonical_request(r);
    };
    for (const char* name :
         {"straight", "deep", "cross_sign", "pathlen_violation",
          "non_ca_intermediate", "missing_intermediate", "untrusted_root",
          "mixed_case"}) {
      for (const auto& c : cases) {
        if (c.name != name) continue;
        write_seed(dir, std::string(name) + ".req",
                   request_for(c, rs::query::Op::kVerifyChain, mid,
                               rs::query::Scope::kTls));
      }
    }
    for (const auto& c : cases) {
      if (c.name == "email_leaf") {
        write_seed(dir, "email-scope.req",
                   request_for(c, rs::query::Op::kVerifyChain, mid,
                               rs::query::Scope::kEmail));
      }
      if (c.name == "straight") {
        write_seed(dir, "flip-scan.req",
                   request_for(c, rs::query::Op::kFirstRejectedAt,
                               std::nullopt, rs::query::Scope::kTls));
        // Raw DER (not a request line) drives the bare-certificate mode.
        write_seed(dir, "raw-leaf.der", c.leaf->der());
        // Valid base64 of truncated DER: the request parses, the
        // certificate must be rejected without crashing.
        auto half = c.leaf->der();
        half.resize(half.size() / 2);
        rs::query::Request r;
        r.op = rs::query::Op::kVerifyChain;
        r.provider = "CorpusStore";
        r.date = mid;
        r.scope = rs::query::Scope::kTls;
        r.leaf = std::move(half);
        write_seed(dir, "truncated-leaf.req", rs::query::canonical_request(r));
      }
    }
  }

  std::printf("corpus written to %s\n", root.string().c_str());
  return 0;
}
