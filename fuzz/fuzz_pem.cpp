// Fuzz target: rs::encoding::pem_parse_all, the reader for PEM bundles
// (Linux ca-certificates, Mozilla-derived stores).
//
// Parses arbitrary text; every recovered object is re-encoded and re-parsed,
// which must yield the identical DER payload (writer/reader agreement).
#include <string_view>

#include "fuzz/fuzz_harness.h"
#include "src/encoding/pem.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  const auto parsed = rs::encoding::pem_parse_all(text);

  for (const auto& obj : parsed.objects) {
    const std::string round = rs::encoding::pem_encode(obj.label, obj.der);
    const auto again = rs::encoding::pem_parse_all(round);
    // Labels recovered from hostile input may themselves contain framing
    // ("-----"), in which case the re-encoded text legitimately parses
    // differently; only byte-identical recovery is asserted when the
    // re-parse finds exactly one object of the same label.
    if (again.objects.size() == 1 && again.objects[0].label == obj.label) {
      RS_FUZZ_ASSERT(again.objects[0].der == obj.der,
                     "PEM roundtrip changed the DER payload");
    }
  }
  return 0;
}
