// Fuzz target: rs::asn1::Reader, the strict DER decoder underneath every
// binary snapshot format (X.509, authroot.stl, signed envelopes).
//
// Walks the input as a DER forest: constructed elements are descended via
// the tag-specific sub-reader APIs (exercising the nesting-depth cap),
// primitives are decoded through every typed accessor that matches their
// tag.  Any byte string must produce values or diagnostics, never a crash.
#include <span>

#include "fuzz/fuzz_harness.h"
#include "src/asn1/reader.h"
#include "src/asn1/tag.h"

namespace {

using rs::asn1::Reader;
using rs::asn1::UniversalTag;

void decode_primitive(Reader& r, std::uint8_t tag) {
  switch (tag) {
    case rs::asn1::primitive(UniversalTag::kBoolean):
      (void)r.read_boolean();
      return;
    case rs::asn1::primitive(UniversalTag::kInteger):
      // Both widths share the tag; try the narrow one first on a scratch
      // copy so the wide decode still sees the element.
      {
        Reader probe = r;
        (void)probe.read_small_integer();
      }
      (void)r.read_big_integer();
      return;
    case rs::asn1::primitive(UniversalTag::kOid):
      (void)r.read_oid();
      return;
    case rs::asn1::primitive(UniversalTag::kOctetString):
      (void)r.read_octet_string();
      return;
    case rs::asn1::primitive(UniversalTag::kBitString):
      (void)r.read_bit_string();
      return;
    case rs::asn1::primitive(UniversalTag::kNull):
      (void)r.read_null();
      return;
    case rs::asn1::primitive(UniversalTag::kUtf8String):
    case rs::asn1::primitive(UniversalTag::kPrintableString):
    case rs::asn1::primitive(UniversalTag::kIa5String):
    case rs::asn1::primitive(UniversalTag::kT61String):
      (void)r.read_string();
      return;
    default:
      (void)r.read_any();
      return;
  }
}

// Recursive walk; recursion is bounded by Reader::kMaxDepth, which is
// exactly the property this harness pressure-tests with nested input.
void walk(Reader r) {
  while (!r.at_end()) {
    const std::size_t before = r.remaining();
    const auto tag = r.peek_tag();
    if (!tag.ok()) return;
    const std::uint8_t t = tag.value();
    if (t == rs::asn1::constructed(UniversalTag::kSequence)) {
      auto sub = r.read_sequence();
      if (!sub.ok()) return;
      walk(sub.value());
    } else if (t == rs::asn1::constructed(UniversalTag::kSet)) {
      auto sub = r.read_set();
      if (!sub.ok()) return;
      walk(sub.value());
    } else if ((t & 0xE0) == (0x80 | rs::asn1::kConstructed)) {
      auto sub = r.read_context(t & 0x1F);
      if (!sub.ok()) return;
      walk(sub.value());
    } else {
      decode_primitive(r, t);
    }
    // A failed decode leaves the cursor untouched; stop instead of spinning.
    if (r.remaining() == before) return;
    RS_FUZZ_ASSERT(r.remaining() < before, "reader cursor moved backwards");
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  walk(Reader(std::span(data, size)));
  return 0;
}
