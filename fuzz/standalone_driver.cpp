// Fallback driver for toolchains without libFuzzer (gcc, or clang without
// -fsanitize=fuzzer): replays every file named on the command line through
// LLVMFuzzerTestOneInput.  This is the binary ctest runs for the
// deterministic corpus regression; under clang the same harness sources
// link against libFuzzer instead and this file is omitted.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <vector>

#include "fuzz/fuzz_harness.h"

namespace {

bool read_file(const char* path, std::vector<std::uint8_t>& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out.assign(std::istreambuf_iterator<char>(in),
             std::istreambuf_iterator<char>());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s corpus-file...\n", argv[0]);
    return 2;
  }
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    std::vector<std::uint8_t> bytes;
    if (!read_file(argv[i], bytes)) {
      std::fprintf(stderr, "cannot read %s\n", argv[i]);
      return 2;
    }
    // A crash/sanitizer report aborts the process here, failing the test.
    LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
    ++replayed;
  }
  std::printf("replayed %d input(s) cleanly\n", replayed);
  return 0;
}
