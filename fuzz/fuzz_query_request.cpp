// Fuzz target: rs::query::parse_request, the strict bounded NDJSON request
// parser behind `rootstore serve` and `rootstore query` (the only code that
// ever touches untrusted bytes on the serving path).
//
// Invariants checked on every accepted input:
//   * canonical_request() of a parsed request reparses successfully
//     (canonicalization never produces a line the parser rejects), and
//   * canonicalizing the reparse is a fixed point (cache keys are stable).
#include <string_view>

#include "fuzz/fuzz_harness.h"
#include "src/query/request.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view line(reinterpret_cast<const char*>(data), size);
  auto parsed = rs::query::parse_request(line);
  if (!parsed.ok()) return 0;

  const std::string canonical = rs::query::canonical_request(parsed.value());
  RS_FUZZ_ASSERT(canonical.size() <= rs::query::kMaxRequestBytes,
                 "canonical form exceeds the request size cap");
  auto again = rs::query::parse_request(canonical);
  RS_FUZZ_ASSERT(again.ok(), "canonical form rejected by the parser");
  RS_FUZZ_ASSERT(rs::query::canonical_request(again.value()) == canonical,
                 "canonicalization is not a fixed point");
  return 0;
}
