// Fuzz target: rs::query::parse_request and the batch-envelope splitter
// parse_batch_request — the strict bounded NDJSON parsers behind
// `rootstore serve` and `rootstore query` (the only code that ever touches
// untrusted bytes on the serving path).
//
// Invariants checked on every accepted single request:
//   * canonical_request() of a parsed request reparses successfully
//     (canonicalization never produces a line the parser rejects), and
//   * canonicalizing the reparse is a fixed point (cache keys are stable).
//
// Invariants checked on every accepted batch envelope:
//   * the splitter honors its caps (item count, per-item bytes) and every
//     returned view aliases the input line,
//   * items the request parser accepts satisfy the same canonical
//     fixed point as singletons, and
//   * re-wrapping the split items into a fresh envelope reparses to the
//     same item bytes (framing round-trips).
#include <cstring>
#include <string>
#include <string_view>

#include "fuzz/fuzz_harness.h"
#include "src/query/request.h"

namespace {

void check_canonical_fixed_point(std::string_view line) {
  auto parsed = rs::query::parse_request(line);
  if (!parsed.ok()) return;
  const std::string canonical = rs::query::canonical_request(parsed.value());
  RS_FUZZ_ASSERT(
      canonical.size() <= rs::query::max_request_bytes(parsed.value().op),
      "canonical form exceeds the per-op request size cap");
  auto again = rs::query::parse_request(canonical);
  RS_FUZZ_ASSERT(again.ok(), "canonical form rejected by the parser");
  RS_FUZZ_ASSERT(rs::query::canonical_request(again.value()) == canonical,
                 "canonicalization is not a fixed point");
}

void check_batch(std::string_view line) {
  auto split = rs::query::parse_batch_request(line);
  if (!split.ok()) return;
  const auto& items = split.value();
  RS_FUZZ_ASSERT(items.size() <= rs::query::kMaxBatchRequests,
                 "batch splitter exceeded the item-count cap");
  std::string rewrapped = "{\"op\":\"batch\",\"requests\":[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    const std::string_view item = items[i];
    RS_FUZZ_ASSERT(item.size() <= rs::query::kMaxVerifyRequestBytes,
                   "batch item exceeds the per-item size cap");
    RS_FUZZ_ASSERT(item.data() >= line.data() &&
                       item.data() + item.size() <= line.data() + line.size(),
                   "batch item does not alias the input line");
    check_canonical_fixed_point(item);
    if (i > 0) rewrapped += ',';
    rewrapped.append(item.data(), item.size());
  }
  rewrapped += "]}";
  if (rewrapped.size() > rs::query::kMaxBatchBytes) return;
  auto again = rs::query::parse_batch_request(rewrapped);
  RS_FUZZ_ASSERT(again.ok(), "re-wrapped batch rejected by the splitter");
  RS_FUZZ_ASSERT(again.value().size() == items.size(),
                 "re-wrapped batch changed the item count");
  for (std::size_t i = 0; i < items.size(); ++i) {
    RS_FUZZ_ASSERT(again.value()[i] == items[i],
                   "re-wrapped batch changed an item's bytes");
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view line(reinterpret_cast<const char*>(data), size);
  if (rs::query::looks_like_batch(line)) {
    check_batch(line);
    return 0;
  }
  check_canonical_fixed_point(line);
  return 0;
}
