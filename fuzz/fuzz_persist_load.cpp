// Fuzz target: rs::query::TrustIndexIO::deserialize, the hardened loader
// for persisted RSIX index files (see docs/PERSISTENCE.md).  The loader is
// the only code that ever maps untrusted bytes straight into the query
// engine's tables, so it must fail closed — typed LoadError, no crash, no
// hostile allocation — for ANY byte string.
//
// Invariants checked on every accepted input:
//   * re-serializing the loaded index yields an image the loader accepts
//     again (a load never produces an unserializable index), and
//   * that second round trip is a byte-level fixed point (canonical
//     encoding: the bytes do not drift across load/store cycles).
#include <span>
#include <string>

#include "fuzz/fuzz_harness.h"
#include "src/query/index_io.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // The container declares its own total size, so anything the mutator can
  // realistically explore fits well under this; the cap just keeps a
  // hostile declared-length from turning the fuzzer into an allocator
  // benchmark.
  constexpr std::size_t kMaxInput = 1 << 20;
  if (size > kMaxInput) return 0;

  auto loaded = rs::query::TrustIndexIO::deserialize({data, size});
  if (!loaded.ok()) return 0;

  const std::string first =
      rs::query::TrustIndexIO::serialize(loaded.value());
  auto again = rs::query::TrustIndexIO::deserialize(
      {reinterpret_cast<const std::uint8_t*>(first.data()), first.size()});
  RS_FUZZ_ASSERT(again.ok(), "re-serialized index rejected by the loader");
  RS_FUZZ_ASSERT(rs::query::TrustIndexIO::serialize(again.value()) == first,
                 "serialization is not a fixed point");
  return 0;
}
