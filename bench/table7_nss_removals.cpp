// Reproduces Table 7 (Appendix C): NSS root removals since 2010 by severity.
#include <cstdio>

#include "src/core/study.h"

int main() {
  auto study = rs::core::EcosystemStudy::from_paper_scenario();
  std::fputs(study.report_table7().c_str(), stdout);
  return 0;
}
