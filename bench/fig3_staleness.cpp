// Reproduces Figure 3: NSS-derivative staleness in substantial versions
// (paper: Alpine 0.73 ... AmazonLinux 4.83 versions behind).
#include <cstdio>
#include <string>

#include "src/core/export.h"
#include "src/core/study.h"

int main(int argc, char** argv) {
  // Pass --csv to dump the raw data series instead of the rendered figure.
  auto study = rs::core::EcosystemStudy::from_paper_scenario();
  if (argc > 1 && std::string(argv[1]) == "--csv") {
    std::fputs(rs::core::figure3_csv(study.scenario()).c_str(), stdout);
  } else {
    std::fputs(study.report_figure3().c_str(), stdout);
  }
  return 0;
}
