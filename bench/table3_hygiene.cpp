// Reproduces Table 3: root store hygiene (avg size / expired roots and the
// MD5 / 1024-bit RSA purge dates), paper vs measured.
#include <cstdio>

#include "src/core/study.h"

int main() {
  auto study = rs::core::EcosystemStudy::from_paper_scenario();
  std::fputs(study.report_table3().c_str(), stdout);
  return 0;
}
