// Reproduces Table 1: Major CDN Top 200 User Agents and root-store coverage.
#include <cstdio>

#include "src/core/study.h"

int main() {
  auto study = rs::core::EcosystemStudy::from_paper_scenario();
  std::fputs(study.report_table1().c_str(), stdout);
  return 0;
}
