// Microbenchmarks for the parsing substrate: DER certificate decoding and
// every root-store format, across realistic store sizes.
#include <benchmark/benchmark.h>

#include "src/formats/authroot_stl.h"
#include "src/formats/cert_dir.h"
#include "src/formats/certdata.h"
#include "src/formats/jks.h"
#include "src/formats/pem_bundle.h"
#include "src/formats/portable.h"
#include "src/synth/root_spec.h"
#include "src/x509/certificate.h"

namespace {

using rs::store::TrustEntry;
using rs::store::TrustPurpose;

std::vector<TrustEntry> make_entries(std::size_t count) {
  rs::synth::CertFactory factory(1);
  std::vector<TrustEntry> out;
  for (std::size_t i = 0; i < count; ++i) {
    rs::synth::RootSpec s;
    s.id = "bench-" + std::to_string(i);
    s.common_name = "Bench Root CA " + std::to_string(i);
    s.organization = "Bench";
    TrustEntry e = rs::store::make_anchor_for(
        factory.get(s),
        {TrustPurpose::kServerAuth, TrustPurpose::kEmailProtection});
    if (i % 5 == 0) {
      e.trust_for(TrustPurpose::kServerAuth).distrust_after =
          rs::util::Date::ymd(2020, 1, 1);
    }
    out.push_back(std::move(e));
  }
  return out;
}

void BM_CertificateParse(benchmark::State& state) {
  const auto entries = make_entries(1);
  const auto& der = entries[0].certificate->der();
  for (auto _ : state) {
    auto parsed = rs::x509::Certificate::parse(der);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(der.size()));
}
BENCHMARK(BM_CertificateParse);

void BM_CertdataParse(benchmark::State& state) {
  const auto entries = make_entries(static_cast<std::size_t>(state.range(0)));
  const std::string text = rs::formats::write_certdata(entries);
  for (auto _ : state) {
    auto parsed = rs::formats::parse_certdata(text);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
  state.counters["roots"] = static_cast<double>(entries.size());
}
BENCHMARK(BM_CertdataParse)->Arg(10)->Arg(50)->Arg(150)->Arg(300);

void BM_CertdataWrite(benchmark::State& state) {
  const auto entries = make_entries(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto text = rs::formats::write_certdata(entries);
    benchmark::DoNotOptimize(text);
  }
}
BENCHMARK(BM_CertdataWrite)->Arg(50)->Arg(150);

void BM_PemBundleParse(benchmark::State& state) {
  const auto entries = make_entries(static_cast<std::size_t>(state.range(0)));
  const std::string text = rs::formats::write_pem_bundle(entries);
  const auto policy = rs::formats::BundleTrustPolicy::tls_only();
  for (auto _ : state) {
    auto parsed = rs::formats::parse_pem_bundle(text, policy);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_PemBundleParse)->Arg(10)->Arg(50)->Arg(150)->Arg(300);

void BM_JksParse(benchmark::State& state) {
  const auto entries = make_entries(static_cast<std::size_t>(state.range(0)));
  const auto blob =
      rs::formats::write_jks(entries, rs::util::Date::ymd(2021, 1, 1));
  for (auto _ : state) {
    auto parsed = rs::formats::parse_jks(blob);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(blob.size()));
}
BENCHMARK(BM_JksParse)->Arg(10)->Arg(50)->Arg(150);

void BM_AuthrootParse(benchmark::State& state) {
  const auto entries = make_entries(static_cast<std::size_t>(state.range(0)));
  const auto blob = rs::formats::write_authroot(entries);
  for (auto _ : state) {
    auto parsed = rs::formats::parse_authroot(blob.stl, blob.certs);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_AuthrootParse)->Arg(10)->Arg(50)->Arg(150)->Arg(300);

void BM_CertDirParse(benchmark::State& state) {
  const auto entries = make_entries(static_cast<std::size_t>(state.range(0)));
  const auto files = rs::formats::write_cert_dir(entries);
  const auto policy = rs::formats::BundleTrustPolicy::tls_only();
  for (auto _ : state) {
    auto parsed = rs::formats::parse_cert_dir(files, policy);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_CertDirParse)->Arg(50)->Arg(150);

void BM_RstsParse(benchmark::State& state) {
  const auto entries = make_entries(static_cast<std::size_t>(state.range(0)));
  const std::string text = rs::formats::write_rsts(entries);
  for (auto _ : state) {
    auto parsed = rs::formats::parse_rsts(text);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_RstsParse)->Arg(10)->Arg(50)->Arg(150)->Arg(300);

void BM_RstsWrite(benchmark::State& state) {
  const auto entries = make_entries(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto text = rs::formats::write_rsts(entries);
    benchmark::DoNotOptimize(text);
  }
}
BENCHMARK(BM_RstsWrite)->Arg(50)->Arg(150);

void BM_CertificateBuild(benchmark::State& state) {
  std::uint64_t seed = 0;
  for (auto _ : state) {
    rs::synth::CertFactory factory(++seed);
    rs::synth::RootSpec s;
    s.id = "x";
    s.common_name = "Build Bench Root";
    auto cert = factory.get(s);
    benchmark::DoNotOptimize(cert);
  }
}
BENCHMARK(BM_CertificateBuild);

}  // namespace
