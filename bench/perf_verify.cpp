// Microbenchmarks for the chain-verification workload (docs/VERIFY.md).
//
//   * Point verdicts — BM_VerifyChainStraight / BM_VerifyChainDeep /
//     BM_VerifyChainCrossSign time rs::verify::verify_chain alone over a
//     TrustIndex-backed oracle; BM_EngineVerifyChain is the same verdict
//     through QueryEngine::handle, i.e. what one serve-cache miss costs.
//   * Temporal scans — BM_FirstRejectedAtBreakpoints is the shipped
//     flip_breakpoints + scan_first_rejected sweep through the engine;
//     BM_FirstRejectedAtLinearScan evaluates every day of coverage, which
//     is the naive alternative the breakpoint theorem replaces.
//
// tools/record_verify_bench.sh runs these, writes BENCH_verify.json, and
// enforces the floor: the breakpoint sweep must beat the day-by-day scan
// by >= 5x (it visits ~30x fewer dates on the paper scenario).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/asn1/oid.h"
#include "src/query/engine.h"
#include "src/query/request.h"
#include "src/query/trust_index.h"
#include "src/synth/chain_gen.h"
#include "src/synth/incidents.h"
#include "src/synth/paper_scenario.h"
#include "src/verify/temporal.h"
#include "src/verify/verify.h"
#include "src/x509/certificate.h"

namespace {

using rs::query::Op;
using rs::query::QueryEngine;
using rs::query::Request;
using rs::query::Scope;
using rs::query::TrustAnswer;
using rs::synth::ChainCase;
using rs::util::Date;
using rs::x509::Certificate;

struct Bench {
  rs::synth::PaperScenario scenario = rs::synth::build_paper_scenario();
  std::vector<ChainCase> cases;
  QueryEngine engine;
  std::string provider;
  Date mid{};

  Bench()
      : cases(make_cases(scenario)), engine(scenario.database(), {}) {
    provider = engine.index().has_provider("NSS")
                   ? "NSS"
                   : engine.index().providers().front();
    const auto cov = engine.index().coverage(provider);
    mid = cov->first + (cov->last - cov->first) / 2;
  }

  static std::vector<ChainCase> make_cases(rs::synth::PaperScenario& s) {
    auto config = rs::synth::default_chain_config(s.database());
    for (const auto& incident : rs::synth::high_severity_incidents()) {
      for (const auto& root_id : incident.root_ids) {
        if (auto cert = s.factory().find(root_id)) {
          config.incident_anchors.emplace_back(
              incident.name + "/" + root_id, std::move(cert));
        }
      }
    }
    return build_chain_cases(config);
  }

  const ChainCase& find(const std::string& prefix) const {
    for (const auto& c : cases) {
      if (c.name.rfind(prefix, 0) == 0) return c;
    }
    std::abort();  // the generator lost a named case
  }

  rs::verify::TrustOracle oracle(Scope scope) const {
    const rs::query::TrustIndex& index = engine.index();
    rs::verify::TrustOracle o;
    auto to_oracle = [](TrustAnswer a) {
      switch (a) {
        case TrustAnswer::kTrusted: return rs::verify::OracleAnswer::kYes;
        case TrustAnswer::kUntrusted: return rs::verify::OracleAnswer::kNo;
        case TrustAnswer::kNotCovered:
          return rs::verify::OracleAnswer::kNotCovered;
      }
      return rs::verify::OracleAnswer::kNo;
    };
    o.present = [&index, this, to_oracle](const rs::crypto::Sha256Digest& fp,
                                          Date d) {
      return to_oracle(index.is_trusted(fp, provider, d, Scope::kPresent));
    };
    o.anchor = [&index, this, to_oracle, scope](
                   const rs::crypto::Sha256Digest& fp, Date d) {
      return to_oracle(index.is_trusted(fp, provider, d, scope));
    };
    return o;
  }

  Request request(const ChainCase& c, Op op, std::optional<Date> date) const {
    Request r;
    r.op = op;
    r.provider = provider;
    r.date = date;
    r.scope = Scope::kTls;
    r.leaf = c.leaf->der();
    for (const auto& cert : c.pool) r.pool.push_back(cert->der());
    std::sort(r.pool.begin(), r.pool.end());
    r.pool.erase(std::unique(r.pool.begin(), r.pool.end()), r.pool.end());
    return r;
  }
};

const Bench& bench() {
  static const Bench* b = new Bench();
  return *b;
}

std::vector<const Certificate*> raw_pool(const ChainCase& c) {
  std::vector<const Certificate*> pool;
  for (const auto& cert : c.pool) pool.push_back(cert.get());
  return pool;
}

void verify_case(benchmark::State& state, const std::string& name) {
  const Bench& b = bench();
  const ChainCase& c = b.find(name);
  const auto pool = raw_pool(c);
  const auto oracle = b.oracle(Scope::kTls);
  const auto eku = rs::asn1::oids::eku_server_auth();
  for (auto _ : state) {
    auto result =
        rs::verify::verify_chain(*c.leaf, pool, b.mid, oracle, eku);
    benchmark::DoNotOptimize(result);
  }
}

void BM_VerifyChainStraight(benchmark::State& state) {
  verify_case(state, "straight");
}
BENCHMARK(BM_VerifyChainStraight);

void BM_VerifyChainDeep(benchmark::State& state) {
  verify_case(state, "deep");
}
BENCHMARK(BM_VerifyChainDeep);

void BM_VerifyChainCrossSign(benchmark::State& state) {
  verify_case(state, "cross_sign");
}
BENCHMARK(BM_VerifyChainCrossSign);

/// The full serve-path cost of one uncached verify_chain answer: request
/// already parsed, response rendered to its JSON line.
void BM_EngineVerifyChain(benchmark::State& state) {
  const Bench& b = bench();
  const Request req = b.request(b.find("straight"), Op::kVerifyChain, b.mid);
  for (auto _ : state) {
    std::string response = b.engine.handle(req);
    benchmark::DoNotOptimize(response);
  }
}
BENCHMARK(BM_EngineVerifyChain);

/// The shipped temporal sweep: snapshot dates ∪ validity edges only.
void BM_FirstRejectedAtBreakpoints(benchmark::State& state) {
  const Bench& b = bench();
  const Request req =
      b.request(b.find("incident:"), Op::kFirstRejectedAt, std::nullopt);
  for (auto _ : state) {
    std::string response = b.engine.handle(req);
    benchmark::DoNotOptimize(response);
  }
}
BENCHMARK(BM_FirstRejectedAtBreakpoints);

/// The naive alternative: evaluate the chain on every single day of the
/// provider's coverage.  Kept as the honest baseline the breakpoint
/// theorem is measured against.
void BM_FirstRejectedAtLinearScan(benchmark::State& state) {
  const Bench& b = bench();
  const ChainCase& c = b.find("incident:");
  const auto pool = raw_pool(c);
  const auto oracle = b.oracle(Scope::kTls);
  const auto eku = rs::asn1::oids::eku_server_auth();
  const auto cov = b.engine.index().coverage(b.provider);
  for (auto _ : state) {
    std::optional<Date> accepted_from, first_rejected;
    for (Date d = cov->first; d <= cov->last; d = d + 1) {
      const bool ok =
          rs::verify::verify_chain(*c.leaf, pool, d, oracle, eku).accepted;
      if (!accepted_from) {
        if (ok) accepted_from = d;
      } else if (!ok) {
        first_rejected = d;
        break;
      }
    }
    benchmark::DoNotOptimize(accepted_from);
    benchmark::DoNotOptimize(first_rejected);
  }
}
BENCHMARK(BM_FirstRejectedAtLinearScan);

}  // namespace
