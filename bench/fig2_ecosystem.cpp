// Reproduces Figure 2: the inverted-pyramid root-store ecosystem — the
// share of top-200 user agents resting on each root program
// (paper: NSS 34%, Apple 23%, Microsoft 20%, Java ~0%).
#include <cstdio>

#include "src/core/study.h"

int main() {
  auto study = rs::core::EcosystemStudy::from_paper_scenario();
  std::fputs(study.report_figure2().c_str(), stdout);
  return 0;
}
