// Microbenchmarks for the analysis layer: Jaccard matrix construction,
// classical-vs-SMACOF MDS (the DESIGN.md ablation), clustering, staleness,
// and full scenario construction.  Also reports the trust-aware vs
// all-certificates Jaccard ablation.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "src/analysis/cadence.h"
#include "src/analysis/churn.h"
#include "src/analysis/cluster.h"
#include "src/analysis/diffs.h"
#include "src/analysis/jaccard.h"
#include "src/analysis/mds.h"
#include "src/analysis/operators.h"
#include "src/analysis/staleness.h"
#include "src/exec/thread_pool.h"
#include "src/obs/registry.h"
#include "src/store/fingerprint_set.h"
#include "src/store/interner.h"
#include "src/synth/paper_scenario.h"
#include "src/synth/simulator.h"

namespace {

const rs::synth::PaperScenario& shared_scenario() {
  static const rs::synth::PaperScenario scenario =
      rs::synth::build_paper_scenario();
  return scenario;
}

void BM_ScenarioBuild(benchmark::State& state) {
  for (auto _ : state) {
    auto scenario = rs::synth::build_paper_scenario();
    benchmark::DoNotOptimize(scenario.database().total_snapshots());
  }
}
BENCHMARK(BM_ScenarioBuild)->Unit(benchmark::kMillisecond);

void BM_SimulatorScaling(benchmark::State& state) {
  rs::synth::SimulatorConfig cfg;
  cfg.ca_count = static_cast<int>(state.range(0));
  cfg.seed = 5;
  for (auto _ : state) {
    auto eco = rs::synth::simulate_ecosystem(cfg);
    benchmark::DoNotOptimize(eco.database.total_snapshots());
  }
  state.counters["cas"] = static_cast<double>(cfg.ca_count);
}
BENCHMARK(BM_SimulatorScaling)->Arg(50)->Arg(150)->Arg(400)
    ->Unit(benchmark::kMillisecond);

void BM_JaccardMatrix(benchmark::State& state) {
  const auto& scenario = shared_scenario();
  rs::analysis::JaccardOptions opts;
  opts.max_per_provider = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto dist = rs::analysis::jaccard_matrix(scenario.database(), opts);
    benchmark::DoNotOptimize(dist.values.data());
    state.counters["snapshots"] = static_cast<double>(dist.size());
  }
}
BENCHMARK(BM_JaccardMatrix)->Arg(10)->Arg(25)->Arg(50)
    ->Unit(benchmark::kMillisecond);

// Thread-pool scaling on the Figure-1-sized matrix (the paper's 2011-2021
// window, 40 snapshots/provider — the report_figure1 default).  Arg is the
// worker count; 0 is the inline serial baseline.  Results are
// bitwise-identical across args (see docs/PARALLELISM.md); only the wall
// clock moves.  tools/record_parallel_bench.sh captures this sweep into
// BENCH_parallel.json.
void BM_JaccardMatrixParallel(benchmark::State& state) {
  const auto& scenario = shared_scenario();
  rs::analysis::JaccardOptions opts;
  opts.min_date = rs::util::Date::ymd(2011, 1, 1);
  opts.max_per_provider = 40;
  const auto threads = static_cast<std::size_t>(state.range(0));
  std::unique_ptr<rs::exec::ThreadPool> pool;
  if (threads > 0) pool = std::make_unique<rs::exec::ThreadPool>(threads);
  for (auto _ : state) {
    auto dist =
        rs::analysis::jaccard_matrix(scenario.database(), opts, pool.get());
    benchmark::DoNotOptimize(dist.values.data());
    state.counters["snapshots"] = static_cast<double>(dist.size());
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.SetLabel(threads == 0 ? "serial" : std::to_string(threads) + "-workers");
}
BENCHMARK(BM_JaccardMatrixParallel)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

void BM_MdsSmacofParallel(benchmark::State& state) {
  const auto& scenario = shared_scenario();
  rs::analysis::JaccardOptions opts;
  opts.min_date = rs::util::Date::ymd(2011, 1, 1);
  opts.max_per_provider = 40;
  const auto dist = rs::analysis::jaccard_matrix(scenario.database(), opts);
  const auto threads = static_cast<std::size_t>(state.range(0));
  std::unique_ptr<rs::exec::ThreadPool> pool;
  if (threads > 0) pool = std::make_unique<rs::exec::ThreadPool>(threads);
  for (auto _ : state) {
    auto mds = rs::analysis::smacof_mds(dist, {}, pool.get());
    benchmark::DoNotOptimize(mds.points.data());
    state.counters["iters"] = static_cast<double>(mds.iterations);
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.SetLabel(threads == 0 ? "serial" : std::to_string(threads) + "-workers");
}
BENCHMARK(BM_MdsSmacofParallel)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

// --- Interning engine benchmarks (BENCH_intern.json) -----------------------
//
// The paper-scenario Figure 1 matrix (2011-2021 window, 40
// snapshots/provider) pairwise-compared with the legacy sorted-merge
// engine vs the dense-ID popcount engine.  Both produce bit-identical
// matrices (intern_equivalence_tests); only the wall clock moves.
// tools/record_intern_bench.sh captures this sweep.

const rs::store::CertInterner& shared_interner() {
  static const rs::store::CertInterner interner =
      rs::store::CertInterner::from_database(shared_scenario().database());
  return interner;
}

void BM_JaccardMatrixMerge(benchmark::State& state) {
  const auto& scenario = shared_scenario();
  rs::analysis::JaccardOptions opts;
  opts.min_date = rs::util::Date::ymd(2011, 1, 1);
  opts.max_per_provider = static_cast<std::size_t>(state.range(0));
  opts.algebra = rs::analysis::SetAlgebra::kSortedMerge;
  for (auto _ : state) {
    auto dist = rs::analysis::jaccard_matrix(scenario.database(), opts);
    benchmark::DoNotOptimize(dist.values.data());
    state.counters["snapshots"] = static_cast<double>(dist.size());
  }
  state.SetLabel("sorted-merge");
}
BENCHMARK(BM_JaccardMatrixMerge)->Arg(25)->Arg(40)->Arg(80)
    ->Unit(benchmark::kMillisecond);

void BM_JaccardMatrixInterned(benchmark::State& state) {
  const auto& scenario = shared_scenario();
  const auto& interner = shared_interner();  // built once, as in the study
  rs::analysis::JaccardOptions opts;
  opts.min_date = rs::util::Date::ymd(2011, 1, 1);
  opts.max_per_provider = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto dist = rs::analysis::jaccard_matrix(scenario.database(), opts,
                                             nullptr, &interner);
    benchmark::DoNotOptimize(dist.values.data());
    state.counters["snapshots"] = static_cast<double>(dist.size());
  }
  state.SetLabel("interned");
}
BENCHMARK(BM_JaccardMatrixInterned)->Arg(25)->Arg(40)->Arg(80)
    ->Unit(benchmark::kMillisecond);

void BM_InternerBuild(benchmark::State& state) {
  const auto& scenario = shared_scenario();
  for (auto _ : state) {
    auto interner =
        rs::store::CertInterner::from_database(scenario.database());
    benchmark::DoNotOptimize(interner.size());
    state.counters["universe"] = static_cast<double>(interner.size());
  }
}
BENCHMARK(BM_InternerBuild)->Unit(benchmark::kMillisecond);

// The isolated pair loop: one row of Jaccard distances between cached
// sets, with no snapshot materialization in the timed region.  This is the
// per-element cost the interning converts from a 32-byte merge to a
// popcount.
void BM_JaccardPairLoop(benchmark::State& state) {
  const auto& scenario = shared_scenario();
  rs::analysis::JaccardOptions opts;
  opts.min_date = rs::util::Date::ymd(2011, 1, 1);
  opts.max_per_provider = 40;
  // Reuse matrix selection to fetch the snapshot list deterministically.
  const auto dist = rs::analysis::jaccard_matrix(scenario.database(), opts);
  std::vector<rs::store::FingerprintSet> sets;
  std::vector<rs::store::InternedSet> interned;
  for (const auto& label : dist.labels) {
    const auto& snap =
        scenario.database().find(label.provider)->snapshots()[label.provider_index];
    sets.push_back(snap.all_fingerprints());
    interned.push_back(shared_interner().intern(sets.back()));
  }
  const bool use_interned = state.range(0) == 1;
  for (auto _ : state) {
    double sum = 0.0;
    for (std::size_t i = 0; i < sets.size(); ++i) {
      for (std::size_t j = i + 1; j < sets.size(); ++j) {
        sum += use_interned
                   ? rs::store::jaccard_distance(interned[i], interned[j])
                   : sets[i].jaccard_distance(sets[j]);
      }
    }
    benchmark::DoNotOptimize(sum);
  }
  state.counters["pairs"] =
      static_cast<double>(sets.size() * (sets.size() - 1) / 2);
  state.SetLabel(use_interned ? "interned" : "sorted-merge");
}
BENCHMARK(BM_JaccardPairLoop)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_StalenessEngines(benchmark::State& state) {
  const auto& scenario = shared_scenario();
  const auto* nss = scenario.database().find("NSS");
  const bool use_interned = state.range(0) == 1;
  const auto index = use_interned
                         ? rs::analysis::build_version_index(*nss)
                         : rs::analysis::build_version_index_merge(*nss);
  for (auto _ : state) {
    double total = 0;
    for (const char* name :
         {"Alpine", "AmazonLinux", "Android", "NodeJS", "Debian", "Ubuntu"}) {
      total += rs::analysis::derivative_staleness(
                   *scenario.database().find(name), index)
                   .avg_versions_behind;
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetLabel(use_interned ? "interned" : "sorted-merge");
}
BENCHMARK(BM_StalenessEngines)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_DiffSeriesEngines(benchmark::State& state) {
  const auto& scenario = shared_scenario();
  const auto* nss = scenario.database().find("NSS");
  const bool use_interned = state.range(0) == 1;
  const auto index = use_interned
                         ? rs::analysis::build_version_index(*nss)
                         : rs::analysis::build_version_index_merge(*nss);
  for (auto _ : state) {
    std::size_t points = 0;
    for (const char* name :
         {"Alpine", "AmazonLinux", "Android", "NodeJS", "Debian", "Ubuntu"}) {
      points += rs::analysis::derivative_diffs(
                    *scenario.database().find(name), *nss, index)
                    .points.size();
    }
    benchmark::DoNotOptimize(points);
  }
  state.SetLabel(use_interned ? "interned" : "sorted-merge");
}
BENCHMARK(BM_DiffSeriesEngines)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// Ablation: all-certificates (paper) vs TLS-anchors-only (trust-aware) sets.
void BM_JaccardSetKind(benchmark::State& state) {
  const auto& scenario = shared_scenario();
  rs::analysis::JaccardOptions opts;
  opts.max_per_provider = 25;
  opts.set_kind = state.range(0) == 0
                      ? rs::analysis::SetKind::kAllCertificates
                      : rs::analysis::SetKind::kTlsAnchors;
  for (auto _ : state) {
    auto dist = rs::analysis::jaccard_matrix(scenario.database(), opts);
    benchmark::DoNotOptimize(dist.values.data());
  }
  state.SetLabel(state.range(0) == 0 ? "all-certificates" : "tls-anchors");
}
BENCHMARK(BM_JaccardSetKind)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// Ablation: classical MDS vs SMACOF (paper's choice), same input.
void BM_MdsClassical(benchmark::State& state) {
  const auto& scenario = shared_scenario();
  rs::analysis::JaccardOptions opts;
  opts.max_per_provider = static_cast<std::size_t>(state.range(0));
  const auto dist = rs::analysis::jaccard_matrix(scenario.database(), opts);
  for (auto _ : state) {
    auto mds = rs::analysis::classical_mds(dist);
    benchmark::DoNotOptimize(mds.points.data());
    state.counters["stress"] = mds.normalized_stress;
  }
}
BENCHMARK(BM_MdsClassical)->Arg(15)->Arg(25)->Unit(benchmark::kMillisecond);

void BM_MdsSmacof(benchmark::State& state) {
  const auto& scenario = shared_scenario();
  rs::analysis::JaccardOptions opts;
  opts.max_per_provider = static_cast<std::size_t>(state.range(0));
  const auto dist = rs::analysis::jaccard_matrix(scenario.database(), opts);
  for (auto _ : state) {
    auto mds = rs::analysis::smacof_mds(dist);
    benchmark::DoNotOptimize(mds.points.data());
    state.counters["stress"] = mds.normalized_stress;
    state.counters["iters"] = static_cast<double>(mds.iterations);
  }
}
BENCHMARK(BM_MdsSmacof)->Arg(15)->Arg(25)->Unit(benchmark::kMillisecond);

// Ablation: single vs complete linkage on the same matrix.  Complete
// linkage fragments decade-long lineages (more clusters, worse purity fit
// to the four families), which is why the pipeline uses single linkage.
void BM_Clustering(benchmark::State& state) {
  const auto& scenario = shared_scenario();
  rs::analysis::JaccardOptions opts;
  opts.max_per_provider = 25;
  const auto dist = rs::analysis::jaccard_matrix(scenario.database(), opts);
  const bool complete = state.range(0) == 1;
  for (auto _ : state) {
    auto clusters =
        complete ? rs::analysis::cluster_snapshots_complete(dist, 0.35)
                 : rs::analysis::cluster_snapshots(dist, 0.35);
    benchmark::DoNotOptimize(clusters.assignment.data());
    state.counters["clusters"] = static_cast<double>(clusters.cluster_count);
    state.counters["silhouette"] =
        rs::analysis::silhouette_score(dist, clusters);
  }
  state.SetLabel(complete ? "complete-linkage" : "single-linkage");
}
BENCHMARK(BM_Clustering)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_VersionIndexBuild(benchmark::State& state) {
  const auto& scenario = shared_scenario();
  const auto* nss = scenario.database().find("NSS");
  for (auto _ : state) {
    auto index = rs::analysis::build_version_index(*nss);
    benchmark::DoNotOptimize(index.size());
  }
}
BENCHMARK(BM_VersionIndexBuild)->Unit(benchmark::kMillisecond);

void BM_ChurnAndOutliers(benchmark::State& state) {
  const auto& scenario = shared_scenario();
  for (auto _ : state) {
    std::vector<rs::analysis::ChurnSeries> all;
    for (const auto& [name, history] : scenario.database().histories()) {
      (void)name;
      all.push_back(rs::analysis::churn_series(history));
    }
    auto outliers = rs::analysis::find_outliers(all);
    benchmark::DoNotOptimize(outliers.data());
    state.counters["outliers"] = static_cast<double>(outliers.size());
  }
}
BENCHMARK(BM_ChurnAndOutliers)->Unit(benchmark::kMillisecond);

void BM_UpdateCadenceAll(benchmark::State& state) {
  const auto& scenario = shared_scenario();
  for (auto _ : state) {
    double total = 0;
    for (const auto& [name, history] : scenario.database().histories()) {
      (void)name;
      total += rs::analysis::update_cadence(history).substantial_per_year;
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_UpdateCadenceAll)->Unit(benchmark::kMillisecond);

void BM_OperatorFootprints(benchmark::State& state) {
  const auto& scenario = shared_scenario();
  const std::vector<std::string> programs = {"NSS", "Java", "Apple",
                                             "Microsoft"};
  for (auto _ : state) {
    auto footprints =
        rs::analysis::operator_footprints(scenario.database(), programs);
    benchmark::DoNotOptimize(footprints.data());
    state.counters["operators"] = static_cast<double>(footprints.size());
  }
}
BENCHMARK(BM_OperatorFootprints)->Unit(benchmark::kMillisecond);

// --- Observability overhead (BENCH_obs.json) -------------------------------
//
// The same Figure-1-sized work items with the rs_obs registry disabled
// (the default) vs enabled with the production steady clock.  The
// acceptance gate compares the untraced arm against the uninstrumented
// baseline benchmarks (tools/record_obs_bench.sh): the disabled cost of
// every probe on the hot path is one relaxed atomic load, so the delta
// must stay within noise (≤2%).

void BM_JaccardMatrixObs(benchmark::State& state) {
  const auto& scenario = shared_scenario();
  const auto& interner = shared_interner();
  rs::analysis::JaccardOptions opts;
  opts.min_date = rs::util::Date::ymd(2011, 1, 1);
  opts.max_per_provider = 40;
  auto& reg = rs::obs::Registry::global();
  const bool traced = state.range(0) == 1;
  if (traced) reg.enable();
  for (auto _ : state) {
    // Per-iteration reset keeps span storage bounded; its cost is part of
    // the enabled arm by design (a traced run pays for its bookkeeping).
    if (traced) reg.reset();
    auto dist = rs::analysis::jaccard_matrix(scenario.database(), opts,
                                             nullptr, &interner);
    benchmark::DoNotOptimize(dist.values.data());
    state.counters["snapshots"] = static_cast<double>(dist.size());
  }
  if (traced) {
    state.counters["spans"] = static_cast<double>(reg.spans().size());
    reg.disable();
    reg.reset();
  }
  state.SetLabel(traced ? "traced" : "untraced");
}
BENCHMARK(BM_JaccardMatrixObs)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_StalenessObs(benchmark::State& state) {
  const auto& scenario = shared_scenario();
  const auto index =
      rs::analysis::build_version_index(*scenario.database().find("NSS"));
  auto& reg = rs::obs::Registry::global();
  const bool traced = state.range(0) == 1;
  if (traced) reg.enable();
  for (auto _ : state) {
    if (traced) reg.reset();
    double total = 0;
    for (const char* name :
         {"Alpine", "AmazonLinux", "Android", "NodeJS", "Debian", "Ubuntu"}) {
      total += rs::analysis::derivative_staleness(
                   *scenario.database().find(name), index)
                   .avg_versions_behind;
    }
    benchmark::DoNotOptimize(total);
  }
  if (traced) {
    state.counters["spans"] = static_cast<double>(reg.spans().size());
    reg.disable();
    reg.reset();
  }
  state.SetLabel(traced ? "traced" : "untraced");
}
BENCHMARK(BM_StalenessObs)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_StalenessAllDerivatives(benchmark::State& state) {
  const auto& scenario = shared_scenario();
  const auto index =
      rs::analysis::build_version_index(*scenario.database().find("NSS"));
  for (auto _ : state) {
    double total = 0;
    for (const char* name :
         {"Alpine", "AmazonLinux", "Android", "NodeJS", "Debian", "Ubuntu"}) {
      total += rs::analysis::derivative_staleness(
                   *scenario.database().find(name), index)
                   .avg_versions_behind;
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_StalenessAllDerivatives)->Unit(benchmark::kMillisecond);

}  // namespace
