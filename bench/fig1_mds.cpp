// Reproduces Figure 1: SMACOF MDS of pairwise Jaccard distances between
// root-store snapshots (2011-2021), with family clustering.  The paper
// finds four disjoint clusters: Microsoft, NSS-like, Apple, Java.
#include <cstdio>
#include <cstdlib>

#include "src/core/export.h"
#include "src/core/study.h"

int main(int argc, char** argv) {
  // Args: [N] snapshots per provider (default 25); --csv dumps the raw
  // embedding instead of the rendered figure.
  std::size_t per_provider = 25;
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--csv") csv = true;
    else per_provider = static_cast<std::size_t>(std::atoi(arg.c_str()));
  }
  auto study = rs::core::EcosystemStudy::from_paper_scenario();
  if (csv) {
    std::fputs(rs::core::figure1_csv(study.scenario(), per_provider).c_str(),
               stdout);
  } else {
    std::fputs(study.report_figure1(per_provider).c_str(), stdout);
  }
  return 0;
}
