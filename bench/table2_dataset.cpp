// Reproduces Table 2: the root-store snapshot dataset, paper vs measured.
#include <cstdio>

#include "src/core/study.h"

int main() {
  auto study = rs::core::EcosystemStudy::from_paper_scenario();
  std::fputs(study.report_table2().c_str(), stdout);
  return 0;
}
