// Reproduces Table 4: per-provider responses to the six high-severity NSS
// removals (DigiNotar, CNNIC, StartCom, WoSign, PSPProcert, Certinomis),
// with measured lags next to the paper's reported ones.
#include <cstdio>

#include "src/core/study.h"

int main() {
  auto study = rs::core::EcosystemStudy::from_paper_scenario();
  std::fputs(study.report_table4().c_str(), stdout);
  return 0;
}
