// Reproduces Table 5 (Appendix A): the survey of which OSes, TLS libraries,
// and TLS clients ship their own root store.
#include <cstdio>

#include "src/core/study.h"

int main() {
  auto study = rs::core::EcosystemStudy::from_paper_scenario();
  std::fputs(study.report_table5().c_str(), stdout);
  return 0;
}
