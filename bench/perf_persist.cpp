// Microbenchmarks for the persisted trust index (RSIX, see
// docs/PERSISTENCE.md): the two speedups the format exists to buy.
//
//   * Cold start — `rootstore serve --index FILE` deserializes the
//     persisted image (BM_ColdStartLoad / BM_ColdStartLoadFile, the mmap
//     path) instead of compiling interner + index from the database
//     (BM_ColdStartRebuild).
//   * Incremental absorb — `rootstore index append` applies one new
//     snapshot to the existing tables (BM_AppendOneSnapshot) instead of
//     recomputing the whole history (BM_FullRecompute).
//
// tools/record_incremental_bench.sh runs these, writes
// BENCH_incremental.json, and enforces the DESIGN.md floors: load >= 20x
// rebuild, append-one >= 10x full recompute, both on the paper scenario.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <utility>

#include "src/query/index_io.h"
#include "src/query/trust_index.h"
#include "src/store/database.h"
#include "src/store/interner.h"
#include "src/store/snapshot.h"
#include "src/synth/paper_scenario.h"

namespace {

using rs::query::TrustIndex;
using rs::query::TrustIndexIO;
using rs::store::StoreDatabase;

const rs::synth::PaperScenario& shared_scenario() {
  static const rs::synth::PaperScenario scenario =
      rs::synth::build_paper_scenario();
  return scenario;
}

TrustIndex build_full() {
  const StoreDatabase& db = shared_scenario().database();
  return TrustIndex::build(db, rs::store::CertInterner::from_database(db));
}

const std::string& shared_image() {
  static const std::string image = TrustIndexIO::serialize(build_full());
  return image;
}

std::span<const std::uint8_t> as_span(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

/// The globally newest snapshot — the one a weekly refresh would add.
const rs::store::Snapshot& newest_snapshot(const StoreDatabase& db) {
  const rs::store::Snapshot* newest = nullptr;
  for (const auto& [name, history] : db.histories()) {
    const auto& candidate = history.back();
    if (newest == nullptr || newest->date < candidate.date) {
      newest = &candidate;
    }
  }
  return *newest;
}

/// The database with the newest snapshot's provider truncated by one
/// release: the "index on disk is one week stale" starting state.
StoreDatabase stale_db() {
  const StoreDatabase& full = shared_scenario().database();
  const std::string provider = newest_snapshot(full).provider;
  StoreDatabase out;
  for (const auto& [name, history] : full.histories()) {
    if (name != provider) {
      out.add(history);
      continue;
    }
    rs::store::ProviderHistory trimmed(name);
    for (std::size_t i = 0; i + 1 < history.size(); ++i) {
      trimmed.add(history.snapshots()[i]);
    }
    out.add(std::move(trimmed));
  }
  return out;
}

void BM_ColdStartRebuild(benchmark::State& state) {
  const StoreDatabase& db = shared_scenario().database();
  for (auto _ : state) {
    auto index = TrustIndex::build(
        db, rs::store::CertInterner::from_database(db));
    benchmark::DoNotOptimize(index.resolution_point_count());
  }
  state.counters["providers"] =
      static_cast<double>(db.histories().size());
}
BENCHMARK(BM_ColdStartRebuild)->Unit(benchmark::kMillisecond);

void BM_ColdStartLoad(benchmark::State& state) {
  const std::string& image = shared_image();
  for (auto _ : state) {
    auto loaded = TrustIndexIO::deserialize(as_span(image));
    benchmark::DoNotOptimize(loaded.ok());
  }
  state.counters["bytes"] = static_cast<double>(image.size());
}
BENCHMARK(BM_ColdStartLoad)->Unit(benchmark::kMillisecond);

// The real serve path: mmap the file, validate, deserialize.
void BM_ColdStartLoadFile(benchmark::State& state) {
  const auto path = std::filesystem::temp_directory_path() /
                    "rs_perf_persist_cold.rsix";
  auto written = TrustIndexIO::write_file(build_full(), path.string());
  if (!written.ok()) {
    state.SkipWithError(written.error().c_str());
    return;
  }
  for (auto _ : state) {
    auto loaded = TrustIndexIO::load_file(path.string());
    benchmark::DoNotOptimize(loaded.ok());
  }
  std::filesystem::remove(path);
}
BENCHMARK(BM_ColdStartLoadFile)->Unit(benchmark::kMillisecond);

void BM_FullRecompute(benchmark::State& state) {
  const StoreDatabase& db = shared_scenario().database();
  for (auto _ : state) {
    auto index = TrustIndex::build(
        db, rs::store::CertInterner::from_database(db));
    benchmark::DoNotOptimize(index.resolution_point_count());
  }
}
BENCHMARK(BM_FullRecompute)->Unit(benchmark::kMillisecond);

void BM_AppendOneSnapshot(benchmark::State& state) {
  const StoreDatabase base = stale_db();
  const TrustIndex stale = TrustIndex::build(
      base, rs::store::CertInterner::from_database(base));
  const rs::store::Snapshot& fresh =
      newest_snapshot(shared_scenario().database());
  for (auto _ : state) {
    state.PauseTiming();
    TrustIndex index = stale;  // append mutates; copy outside the clock
    state.ResumeTiming();
    auto ok = TrustIndexIO::append_snapshot(index, fresh);
    benchmark::DoNotOptimize(ok.ok());
    if (!ok.ok()) {
      state.SkipWithError(ok.error().c_str());
      return;
    }
  }
  state.counters["entries"] = static_cast<double>(fresh.entries.size());
}
BENCHMARK(BM_AppendOneSnapshot)->Unit(benchmark::kMillisecond);

}  // namespace
