// Microbenchmarks for the landscape disparity pass (docs/LANDSCAPE.md).
//
//   * BM_AgreementMatrixIdSet — the shipped path: resolve every provider's
//     store at one date through the TrustIndex (borrowed IdSet views, no
//     copies) and run landscape::agreement_summary, i.e. word-parallel
//     popcounts over interned presence vectors.
//   * BM_AgreementMatrixIdSetPooled — the same pass with the pairwise
//     popcounts fanned out on a 3-worker ThreadPool.
//   * BM_AgreementMatrixNaive — the honest baseline an implementation
//     without the interner would run: extract each provider's snapshot
//     into a sorted FingerprintSet (32-byte digests) and compute the same
//     sizes / exclusive counts / pairwise matrix / union / intersection by
//     merge scans.
//
// tools/record_landscape_bench.sh runs these, writes BENCH_landscape.json,
// and enforces the floor: the IdSet matrix must beat the naive scan by
// >= 5x on the simulated ecosystem below.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <vector>

#include "src/exec/thread_pool.h"
#include "src/landscape/index_view.h"
#include "src/landscape/presence.h"
#include "src/query/engine.h"
#include "src/query/request.h"
#include "src/store/database.h"
#include "src/store/fingerprint_set.h"
#include "src/synth/simulator.h"
#include "src/util/date.h"

namespace {

using rs::query::QueryEngine;
using rs::query::Scope;
using rs::store::FingerprintSet;
using rs::util::Date;

/// A mid-size simulated ecosystem: 4 programs, 8 derivatives, 2 CT logs
/// over 21 years at a 60-day cadence.  Big enough that the per-pair work
/// dominates the per-iteration fixed costs on both sides.
struct Bench {
  rs::synth::SimulatedEcosystem eco;
  QueryEngine engine;
  Date date = Date::ymd(2015, 6, 1);

  static rs::synth::SimulatorConfig config() {
    rs::synth::SimulatorConfig cfg;
    cfg.seed = 20210801;
    cfg.ca_count = 300;
    cfg.program_count = 4;
    cfg.derivative_count = 8;
    cfg.ct_log_count = 2;
    return cfg;
  }

  Bench()
      : eco(rs::synth::simulate_ecosystem(config())),
        engine(eco.database, {}) {}
};

const Bench& bench() {
  static const Bench* b = new Bench();
  return *b;
}

void agreement_idset(benchmark::State& state, rs::exec::ThreadPool* pool) {
  const Bench& b = bench();
  for (auto _ : state) {
    const auto view =
        rs::landscape::presence_at(b.engine.index(), b.date, Scope::kTls);
    auto summary = rs::landscape::agreement_summary(view.sets, pool);
    benchmark::DoNotOptimize(summary);
  }
}

void BM_AgreementMatrixIdSet(benchmark::State& state) {
  agreement_idset(state, nullptr);
}
BENCHMARK(BM_AgreementMatrixIdSet);

void BM_AgreementMatrixIdSetPooled(benchmark::State& state) {
  rs::exec::ThreadPool pool(3);
  agreement_idset(state, &pool);
}
BENCHMARK(BM_AgreementMatrixIdSetPooled);

/// The same metrics from scratch with sorted-digest sets: what every
/// request would cost without interned presence vectors.
void BM_AgreementMatrixNaive(benchmark::State& state) {
  const Bench& b = bench();
  const auto& db = b.eco.database;
  for (auto _ : state) {
    std::vector<FingerprintSet> sets;
    for (const auto& name : db.providers()) {
      const auto* snap = db.find(name)->at(b.date);
      if (snap != nullptr) sets.push_back(snap->tls_anchors());
    }
    std::vector<std::size_t> sizes, exclusive;
    FingerprintSet union_all, intersection_all;
    for (std::size_t i = 0; i < sets.size(); ++i) {
      sizes.push_back(sets[i].size());
      FingerprintSet others;
      for (std::size_t j = 0; j < sets.size(); ++j) {
        if (j != i) others = others.set_union(sets[j]);
      }
      exclusive.push_back(sets[i].difference(others).size());
      union_all = union_all.set_union(sets[i]);
      intersection_all =
          i == 0 ? sets[i] : intersection_all.intersection(sets[i]);
    }
    std::vector<std::size_t> pair_scores;
    for (std::size_t i = 0; i < sets.size(); ++i) {
      for (std::size_t j = i + 1; j < sets.size(); ++j) {
        pair_scores.push_back(sets[i].intersection_size(sets[j]));
        pair_scores.push_back(sets[i].union_size(sets[j]));
      }
    }
    benchmark::DoNotOptimize(sizes);
    benchmark::DoNotOptimize(exclusive);
    benchmark::DoNotOptimize(pair_scores);
    benchmark::DoNotOptimize(union_all);
    benchmark::DoNotOptimize(intersection_all);
  }
}
BENCHMARK(BM_AgreementMatrixNaive);

}  // namespace
