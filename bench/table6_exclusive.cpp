// Reproduces Table 6 (Appendix B): roots exclusive to a single root program
// (paper: NSS 1, Java 0, Apple 13, Microsoft 30).
#include <cstdio>

#include "src/core/study.h"

int main() {
  auto study = rs::core::EcosystemStudy::from_paper_scenario();
  std::fputs(study.report_table6().c_str(), stdout);
  return 0;
}
