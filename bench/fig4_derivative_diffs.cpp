// Reproduces Figure 4: per-derivative added/removed roots against the
// matched NSS version, categorized (non-NSS roots, email-only conflation,
// re-adds, Symantec partial-distrust fallout, custom removals).
#include <cstdio>
#include <string>

#include "src/core/export.h"
#include "src/core/study.h"

int main(int argc, char** argv) {
  // Pass --csv to dump the raw data series instead of the rendered figure.
  auto study = rs::core::EcosystemStudy::from_paper_scenario();
  if (argc > 1 && std::string(argv[1]) == "--csv") {
    std::fputs(rs::core::figure4_csv(study.scenario()).c_str(), stdout);
  } else {
    std::fputs(study.report_figure4().c_str(), stdout);
  }
  return 0;
}
